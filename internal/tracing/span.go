package tracing

import (
	"context"
	"sync"
	"time"
)

// SpanRef names a span within one RequestTrace: a 1-based index into the
// trace's span slab. Zero is "no span" — every method treats it as a
// no-op, so disabled-tracing call sites can thread refs around without
// branching.
type SpanRef int32

// Attr is one span attribute. Values are pre-rendered strings: rendering
// happens inside the nil-checked methods so disabled call sites never
// format (or allocate) anything.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// Span is one timed region of a request. Spans form a tree via Parent
// (a SpanRef; 0 for the root). Limbs is level+1 for evaluator op spans
// and 0 for structural spans, matching the telemetry collector's axis.
type Span struct {
	Ref     SpanRef `json:"ref"`
	Parent  SpanRef `json:"parent"`
	Name    string  `json:"name"`
	StartNs int64   `json:"start_ns"`        // unix nanoseconds
	DurNs   int64   `json:"dur_ns"`          // -1 while open
	Limbs   int     `json:"limbs,omitempty"` // level+1 for op spans
	Err     string  `json:"err,omitempty"`   // non-empty for failed spans
	Attrs   []Attr  `json:"attrs,omitempty"`
}

// RequestTrace accumulates one request's span tree. All methods are safe
// on a nil receiver (no-ops returning zero values) and safe for
// concurrent use — the HTTP goroutine, the scheduler dispatcher, and
// time.AfterFunc retry timers all append spans. After Finish, further
// mutations are dropped: a late span from an abandoned job can never race
// a flight-recorder reader.
type RequestTrace struct {
	mu       sync.Mutex
	tc       Context
	start    time.Time
	spans    []Span
	finished bool
}

// NewRequest starts a trace whose root span is named name. The context's
// span ID (the caller's span, when propagated) is recorded as the root's
// remote parent attribute.
func NewRequest(tc Context, name string) *RequestTrace {
	rt := &RequestTrace{tc: tc, start: time.Now()}
	rt.spans = append(rt.spans, Span{
		Ref:     1,
		Name:    name,
		StartNs: rt.start.UnixNano(),
		DurNs:   -1,
	})
	if tc.Span != 0 {
		rt.spans[0].Attrs = append(rt.spans[0].Attrs, Attr{Key: "remote_parent", Value: Context{Trace: tc.Trace, Span: tc.Span}.Header()})
	}
	return rt
}

// Context returns the trace's propagation context.
func (rt *RequestTrace) Context() Context {
	if rt == nil {
		return Context{}
	}
	return rt.tc
}

// TraceID returns the 32-hex trace ID, or "" when tracing is disabled.
func (rt *RequestTrace) TraceID() string {
	if rt == nil {
		return ""
	}
	return rt.tc.Trace.String()
}

// Root returns the root span's ref (always 1 on a live trace).
func (rt *RequestTrace) Root() SpanRef {
	if rt == nil {
		return 0
	}
	return 1
}

// StartSpan opens a child span under parent (0 means the root) and
// returns its ref. Returns 0 on a nil or finished trace.
func (rt *RequestTrace) StartSpan(parent SpanRef, name string) SpanRef {
	if rt == nil {
		return 0
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.finished {
		return 0
	}
	if parent == 0 {
		parent = 1
	}
	ref := SpanRef(len(rt.spans) + 1)
	rt.spans = append(rt.spans, Span{
		Ref:     ref,
		Parent:  parent,
		Name:    name,
		StartNs: time.Now().UnixNano(),
		DurNs:   -1,
	})
	return ref
}

// EndSpan closes a span opened with StartSpan.
func (rt *RequestTrace) EndSpan(ref SpanRef) { rt.EndSpanErr(ref, nil) }

// EndSpanErr closes a span, recording err (if any) on it.
func (rt *RequestTrace) EndSpanErr(ref SpanRef, err error) {
	if rt == nil || ref == 0 {
		return
	}
	now := time.Now().UnixNano()
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.finished || int(ref) > len(rt.spans) {
		return
	}
	sp := &rt.spans[ref-1]
	if sp.DurNs >= 0 {
		return // already closed
	}
	sp.DurNs = now - sp.StartNs
	if err != nil {
		sp.Err = err.Error()
	}
}

// AddSpan records an already-completed span (start inferred as now-dur)
// under parent. Used for post-hoc regions measured elsewhere.
func (rt *RequestTrace) AddSpan(parent SpanRef, name string, dur time.Duration, err error) SpanRef {
	return rt.addCompleted(parent, name, 0, dur, err)
}

// AddOpSpan records a completed evaluator-op span: name is the op (or
// '/'-tagged phase) and level the FHE level it ran at. This is the
// SpanObserver fan-in path.
func (rt *RequestTrace) AddOpSpan(parent SpanRef, op string, level int, dur time.Duration, err error) {
	rt.addCompleted(parent, op, level+1, dur, err)
}

func (rt *RequestTrace) addCompleted(parent SpanRef, name string, limbs int, dur time.Duration, err error) SpanRef {
	if rt == nil {
		return 0
	}
	now := time.Now().UnixNano()
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.finished {
		return 0
	}
	if parent == 0 {
		parent = 1
	}
	ref := SpanRef(len(rt.spans) + 1)
	sp := Span{
		Ref:     ref,
		Parent:  parent,
		Name:    name,
		StartNs: now - int64(dur),
		DurNs:   int64(dur),
		Limbs:   limbs,
	}
	if err != nil {
		sp.Err = err.Error()
	}
	rt.spans = append(rt.spans, sp)
	return ref
}

// Annotate attaches a key/value attribute to a span.
func (rt *RequestTrace) Annotate(ref SpanRef, key, value string) {
	if rt == nil || ref == 0 {
		return
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.finished || int(ref) > len(rt.spans) {
		return
	}
	sp := &rt.spans[ref-1]
	sp.Attrs = append(sp.Attrs, Attr{Key: key, Value: value})
}

// AnnotateInt attaches an integer attribute. The int64 parameter keeps
// disabled call sites allocation-free: formatting happens here, after the
// nil check.
func (rt *RequestTrace) AnnotateInt(ref SpanRef, key string, v int64) {
	if rt == nil || ref == 0 {
		return
	}
	rt.Annotate(ref, key, itoa(v))
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	neg := v < 0
	if neg {
		v = -v
	}
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// Finished is an immutable completed trace, ready for the flight
// recorder and exporters. Spans[0] is the root.
type Finished struct {
	TraceID string `json:"trace_id"`
	Name    string `json:"name"`
	StartNs int64  `json:"start_ns"`
	DurNs   int64  `json:"dur_ns"`
	Status  int    `json:"status"` // HTTP status the request resolved to
	Err     string `json:"err,omitempty"`
	Keep    string `json:"keep,omitempty"` // recorder's retention reason
	Spans   []Span `json:"spans"`
}

// Finish seals the trace: the root span (and any span left open — e.g.
// the exec span of a job abandoned mid-retry) is closed at the finish
// instant, further mutations are dropped, and the immutable result is
// returned. Returns nil on a nil trace or a double Finish.
func (rt *RequestTrace) Finish(status int, err error) *Finished {
	if rt == nil {
		return nil
	}
	now := time.Now().UnixNano()
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.finished {
		return nil
	}
	rt.finished = true
	for i := range rt.spans {
		if rt.spans[i].DurNs < 0 {
			rt.spans[i].DurNs = now - rt.spans[i].StartNs
		}
	}
	if err != nil && rt.spans[0].Err == "" {
		rt.spans[0].Err = err.Error()
	}
	f := &Finished{
		TraceID: rt.tc.Trace.String(),
		Name:    rt.spans[0].Name,
		StartNs: rt.spans[0].StartNs,
		DurNs:   rt.spans[0].DurNs,
		Status:  status,
		Spans:   rt.spans, // ownership transfers: the trace is sealed
	}
	if err != nil {
		f.Err = err.Error()
	}
	return f
}

// RootAttr returns the value of a root-span attribute, or "".
func (f *Finished) RootAttr(key string) string {
	if f == nil || len(f.Spans) == 0 {
		return ""
	}
	for _, a := range f.Spans[0].Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// Coverage returns the fraction of the root span's wall-clock accounted
// for by its direct children — the acceptance observable for "queue +
// batch + per-op + recovery spans sum to the measured total".
func (f *Finished) Coverage() float64 {
	if f == nil || len(f.Spans) == 0 || f.DurNs <= 0 {
		return 0
	}
	var child int64
	for _, sp := range f.Spans[1:] {
		if sp.Parent == 1 && sp.DurNs > 0 {
			child += sp.DurNs
		}
	}
	cov := float64(child) / float64(f.DurNs)
	if cov > 1 {
		cov = 1 // overlapping retries can over-count; clamp for display
	}
	return cov
}

type ctxKey struct{}

// With attaches a request trace to a context.
func With(ctx context.Context, rt *RequestTrace) context.Context {
	if rt == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, rt)
}

// From extracts the request trace from a context, or nil.
func From(ctx context.Context) *RequestTrace {
	rt, _ := ctx.Value(ctxKey{}).(*RequestTrace)
	return rt
}
