package tracing

import (
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace_event export: each trace becomes one "thread" of complete
// ("ph":"X") events, so Perfetto / chrome://tracing renders the span
// trees as stacked timelines. Timestamps are microseconds with
// fractional nanosecond precision, offset from the earliest trace so the
// viewport opens on the data.

type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`            // microseconds
	Dur  float64        `json:"dur,omitempty"` // microseconds
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders traces (e.g. a FlightRecorder snapshot or the
// "traces" array of /debug/requests?format=json) as Chrome trace_event
// JSON, loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
func WriteChromeTrace(w io.Writer, traces []*Finished) error {
	var base int64
	for _, f := range traces {
		if f == nil {
			continue
		}
		if base == 0 || f.StartNs < base {
			base = f.StartNs
		}
	}
	events := make([]chromeEvent, 0, 2*len(traces))
	for i, f := range traces {
		if f == nil {
			continue
		}
		tid := i + 1
		label := fmt.Sprintf("%s %s", f.Name, f.TraceID)
		if f.Err != "" {
			label += " [ERR]"
		}
		events = append(events, chromeEvent{
			Name: "thread_name",
			Ph:   "M",
			Pid:  1,
			Tid:  tid,
			Args: map[string]any{"name": label},
		})
		for _, sp := range f.Spans {
			args := map[string]any{"trace_id": f.TraceID}
			if sp.Limbs > 0 {
				args["level"] = sp.Limbs - 1
			}
			if sp.Err != "" {
				args["err"] = sp.Err
			}
			for _, a := range sp.Attrs {
				args[a.Key] = a.Value
			}
			dur := sp.DurNs
			if dur < 0 {
				dur = 0
			}
			events = append(events, chromeEvent{
				Name: sp.Name,
				Ph:   "X",
				Pid:  1,
				Tid:  tid,
				Ts:   float64(sp.StartNs-base) / 1e3,
				Dur:  float64(dur) / 1e3,
				Args: args,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ms",
	})
}
