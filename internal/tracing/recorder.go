package tracing

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// FlightRecorder keeps the most recent "interesting" request traces in a
// fixed-size lock-free ring. Tail-sampling policy, decided at Offer time
// (after the request completes, hence "tail"):
//
//  1. always keep errored and deadline-exceeded requests (Status >= 400
//     or a recorded error),
//  2. always keep the slowest-percentile requests — the threshold comes
//     from a log2-bucketed duration histogram of everything offered, so
//     it adapts to the live latency distribution at factor-of-2
//     resolution with no locks,
//  3. keep 1/sampleEvery of the remainder (xorshift, not modulo-time, so
//     bursts are sampled uniformly).
//
// Everything else is counted and dropped. Writers race only on atomics;
// readers snapshot pointer-by-pointer, so a torn view can at worst miss
// or duplicate a slot, never observe a partial trace.
type FlightRecorder struct {
	ring        []atomic.Pointer[Finished]
	pos         atomic.Uint64 // next write slot (monotonic)
	sampleEvery uint64
	slowPct     float64 // e.g. 0.95: keep the slowest 5%
	rng         atomic.Uint64

	buckets [65]atomic.Uint64 // log2(durNs) histogram of all offers

	total       atomic.Uint64
	keptErr     atomic.Uint64
	keptSlow    atomic.Uint64
	keptSampled atomic.Uint64
	dropped     atomic.Uint64

	lastErr  atomic.Pointer[Exemplar]
	lastSlow atomic.Pointer[Exemplar]
}

// Exemplar is a pointer from an aggregate metric to one concrete trace.
type Exemplar struct {
	TraceID string
	Kind    string // "error" | "slow"
	DurNs   int64
	TimeNs  int64
}

// RecorderStats summarizes the recorder's sampling decisions.
type RecorderStats struct {
	Capacity        int     `json:"capacity"`
	Total           uint64  `json:"total"`
	KeptError       uint64  `json:"kept_error"`
	KeptSlow        uint64  `json:"kept_slow"`
	KeptSampled     uint64  `json:"kept_sampled"`
	Dropped         uint64  `json:"dropped"`
	SlowThresholdNs int64   `json:"slow_threshold_ns"`
	SlowPct         float64 `json:"slow_pct"`
	SampleEvery     uint64  `json:"sample_every"`
}

// NewFlightRecorder builds a recorder holding up to capacity traces,
// probabilistically keeping 1/sampleEvery unremarkable requests
// (sampleEvery <= 1 keeps everything) and always keeping the slowest
// (1-slowPct) fraction. slowPct outside (0,1) defaults to 0.95.
func NewFlightRecorder(capacity, sampleEvery int, slowPct float64) *FlightRecorder {
	if capacity < 1 {
		capacity = 1
	}
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	if slowPct <= 0 || slowPct >= 1 {
		slowPct = 0.95
	}
	r := &FlightRecorder{
		ring:        make([]atomic.Pointer[Finished], capacity),
		sampleEvery: uint64(sampleEvery),
		slowPct:     slowPct,
	}
	r.rng.Store(nextID() | 1)
	return r
}

// Offer submits a completed trace; returns whether it was retained.
func (r *FlightRecorder) Offer(f *Finished) bool {
	if r == nil || f == nil {
		return false
	}
	r.total.Add(1)
	dur := f.DurNs
	if dur < 0 {
		dur = 0
	}
	thresh := r.slowThresholdNs() // before recording self: a lone first request is not "slow"
	r.buckets[bits.Len64(uint64(dur))].Add(1)

	now := time.Now().UnixNano()
	switch {
	case f.Status >= 400 || f.Err != "":
		f.Keep = "error"
		r.keptErr.Add(1)
		r.lastErr.Store(&Exemplar{TraceID: f.TraceID, Kind: "error", DurNs: dur, TimeNs: now})
	case dur >= thresh:
		f.Keep = "slow"
		r.keptSlow.Add(1)
		r.lastSlow.Store(&Exemplar{TraceID: f.TraceID, Kind: "slow", DurNs: dur, TimeNs: now})
	case r.sampleEvery <= 1 || r.roll()%r.sampleEvery == 0:
		f.Keep = "sampled"
		r.keptSampled.Add(1)
	default:
		r.dropped.Add(1)
		return false
	}

	slot := (r.pos.Add(1) - 1) % uint64(len(r.ring))
	r.ring[slot].Store(f)
	return true
}

// slowThresholdNs returns the duration above which a request counts as
// slowest-percentile. With log2 buckets the cut is at a power-of-two
// boundary: the smallest 2^k such that at most (1-slowPct) of observed
// requests took >= 2^k. Before any history accumulates it returns
// MaxInt64 (nothing is "slow" yet).
func (r *FlightRecorder) slowThresholdNs() int64 {
	var counts [65]uint64
	var total uint64
	for i := range r.buckets {
		counts[i] = r.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 1<<63 - 1
	}
	allowed := uint64(float64(total) * (1 - r.slowPct))
	var above uint64
	for b := 64; b >= 1; b-- {
		above += counts[b]
		if above > allowed {
			// Bucket b holds durations in [2^(b-1), 2^b). Including it
			// busts the allowance, so the cut is its upper edge: only
			// durations clear of the bulk bucket count as slow. The
			// factor-of-2 resolution makes the policy conservative
			// (never keeps more than the slowest fraction, may keep
			// less when the distribution is tight), which is the right
			// bias for a bounded ring.
			if b >= 63 {
				return 1<<63 - 1
			}
			return int64(1) << b
		}
	}
	return 0
}

// roll is a lock-free xorshift64 step.
func (r *FlightRecorder) roll() uint64 {
	for {
		old := r.rng.Load()
		x := old
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		if r.rng.CompareAndSwap(old, x) {
			return x
		}
	}
}

// Stats returns the recorder's sampling counters.
func (r *FlightRecorder) Stats() RecorderStats {
	if r == nil {
		return RecorderStats{}
	}
	thresh := r.slowThresholdNs()
	if thresh == 1<<63-1 {
		thresh = 0
	}
	return RecorderStats{
		Capacity:        len(r.ring),
		Total:           r.total.Load(),
		KeptError:       r.keptErr.Load(),
		KeptSlow:        r.keptSlow.Load(),
		KeptSampled:     r.keptSampled.Load(),
		Dropped:         r.dropped.Load(),
		SlowThresholdNs: thresh,
		SlowPct:         r.slowPct,
		SampleEvery:     r.sampleEvery,
	}
}

// Snapshot returns the retained traces, newest first.
func (r *FlightRecorder) Snapshot() []*Finished {
	if r == nil {
		return nil
	}
	pos := r.pos.Load()
	n := uint64(len(r.ring))
	if pos < n {
		n = pos
	}
	out := make([]*Finished, 0, n)
	for i := uint64(1); i <= n; i++ {
		if f := r.ring[(pos-i)%uint64(len(r.ring))].Load(); f != nil {
			out = append(out, f)
		}
	}
	return out
}

// Find returns the retained trace with the given 32-hex ID, or nil.
func (r *FlightRecorder) Find(traceID string) *Finished {
	if r == nil {
		return nil
	}
	for i := range r.ring {
		if f := r.ring[i].Load(); f != nil && f.TraceID == traceID {
			return f
		}
	}
	return nil
}

// Exemplars returns the most recent error and slow exemplars (either may
// be absent) for attachment to Prometheus latency families.
func (r *FlightRecorder) Exemplars() []Exemplar {
	if r == nil {
		return nil
	}
	var out []Exemplar
	if e := r.lastErr.Load(); e != nil {
		out = append(out, *e)
	}
	if e := r.lastSlow.Load(); e != nil {
		out = append(out, *e)
	}
	return out
}
