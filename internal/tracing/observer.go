package tracing

import (
	"fmt"
	"sync/atomic"
	"time"
)

// EvalObserver bridges the ckks observer plumbing into request traces.
// It structurally implements ckks.OpObserver, ckks.SpanObserver and
// ckks.RecoveryObserver (no ckks import — the evaluator asserts the
// interfaces), so it can ride a ckks.Fanout next to the telemetry
// collector on every tenant evaluator.
//
// The scheduler activates a scope (trace + parent span) around each job's
// evaluator call and deactivates it after; evaluation happens on the
// single dispatcher goroutine, so one atomic slot suffices. Observations
// arriving with no active scope (warm-up, registry smoke tests) fall
// through to a nil trace and cost one atomic load.
type EvalObserver struct {
	tracer *Tracer
	active atomic.Pointer[scope]
}

type scope struct {
	rt     *RequestTrace
	parent SpanRef
}

// NewEvalObserver builds the sink. The tracer (which may be nil) receives
// op-recovery events so chaos campaigns can join op-level recoveries to
// trace IDs.
func NewEvalObserver(t *Tracer) *EvalObserver {
	return &EvalObserver{tracer: t}
}

// Activate points evaluator observations at rt, parenting op spans under
// parent. Passing a nil rt is equivalent to Deactivate.
func (o *EvalObserver) Activate(rt *RequestTrace, parent SpanRef) {
	if rt == nil {
		o.active.Store(nil)
		return
	}
	o.active.Store(&scope{rt: rt, parent: parent})
}

// Deactivate detaches the current scope.
func (o *EvalObserver) Deactivate() { o.active.Store(nil) }

// Observe implements the count-only OpObserver method; per-op counting is
// the collector's job, so this is a no-op.
func (o *EvalObserver) Observe(op string, level int) {}

// ObserveSpan attaches one completed op (or '/'-tagged phase) span to the
// active request's tree.
func (o *EvalObserver) ObserveSpan(op string, level int, dur time.Duration, err error) {
	sc := o.active.Load()
	if sc == nil {
		return
	}
	sc.rt.AddOpSpan(sc.parent, op, level, dur, err)
}

// ObserveRecovery records an op-level recovery outcome as a span on the
// active trace and emits a structured event carrying the trace ID.
func (o *EvalObserver) ObserveRecovery(op string, retries int, recovered bool, dur time.Duration) {
	sc := o.active.Load()
	if sc == nil {
		return
	}
	ref := sc.rt.AddSpan(sc.parent, "recovery", dur, nil)
	sc.rt.Annotate(ref, "op", op)
	sc.rt.AnnotateInt(ref, "retries", int64(retries))
	if recovered {
		sc.rt.Annotate(ref, "outcome", "recovered")
	} else {
		sc.rt.Annotate(ref, "outcome", "unrecoverable")
	}
	ev := Event{
		TimeNs:  time.Now().UnixNano(),
		Kind:    "op-recovery",
		Trace:   sc.rt.TraceID(),
		Layer:   "op",
		Attempt: retries,
	}
	if !recovered {
		ev.Err = fmt.Sprintf("%s unrecoverable after %d re-executions", op, retries)
	}
	o.tracer.Emit(ev)
}
