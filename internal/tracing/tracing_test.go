package tracing

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHeaderRoundTrip(t *testing.T) {
	tc := NewContext()
	if !tc.Valid() {
		t.Fatal("NewContext produced an invalid context")
	}
	h := tc.Header()
	if len(h) != 32 {
		t.Fatalf("bare header length = %d, want 32: %q", len(h), h)
	}
	got, err := ParseHeader(h)
	if err != nil {
		t.Fatalf("ParseHeader(%q): %v", h, err)
	}
	if got != tc {
		t.Fatalf("round trip: got %+v want %+v", got, tc)
	}

	tc.Span = 0xdeadbeef
	h = tc.Header()
	if len(h) != 49 {
		t.Fatalf("spanned header length = %d, want 49: %q", len(h), h)
	}
	got, err = ParseHeader(h)
	if err != nil || got != tc {
		t.Fatalf("spanned round trip: got %+v, %v; want %+v", got, err, tc)
	}

	// Uppercase hex is accepted.
	if _, err := ParseHeader(strings.ToUpper(tc.Trace.String())); err != nil {
		t.Fatalf("uppercase: %v", err)
	}

	for _, bad := range []string{"", "xyz", strings.Repeat("0", 32), strings.Repeat("g", 32),
		strings.Repeat("a", 31), strings.Repeat("a", 33), strings.Repeat("a", 32) + "_" + strings.Repeat("b", 16)} {
		if _, err := ParseHeader(bad); err == nil {
			t.Errorf("ParseHeader(%q) accepted malformed input", bad)
		}
	}
}

func TestTraceIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 10000; i++ {
		id := NewContext().Trace.String()
		if seen[id] {
			t.Fatalf("duplicate trace ID %s after %d draws", id, i)
		}
		seen[id] = true
	}
}

func TestNilTraceIsSafe(t *testing.T) {
	var rt *RequestTrace
	ref := rt.StartSpan(0, "x")
	if ref != 0 {
		t.Fatalf("nil StartSpan ref = %d, want 0", ref)
	}
	rt.EndSpan(ref)
	rt.EndSpanErr(ref, errors.New("boom"))
	rt.AddOpSpan(0, "HAdd", 2, time.Millisecond, nil)
	rt.Annotate(ref, "k", "v")
	rt.AnnotateInt(ref, "k", 42)
	if f := rt.Finish(200, nil); f != nil {
		t.Fatal("nil Finish returned non-nil")
	}
	if id := rt.TraceID(); id != "" {
		t.Fatalf("nil TraceID = %q", id)
	}
	var tr *Tracer
	if tr.NewRequest(NewContext(), "r") != nil {
		t.Fatal("nil Tracer minted a trace")
	}
	tr.Offer(nil)
	tr.Emit(Event{Kind: "x"})
}

func TestSpanTree(t *testing.T) {
	rt := NewRequest(NewContext(), "request")
	rt.Annotate(rt.Root(), "tenant", "t0")
	ingest := rt.StartSpan(rt.Root(), "ingest")
	time.Sleep(2 * time.Millisecond)
	rt.EndSpan(ingest)
	ex := rt.StartSpan(0, "exec")
	rt.AnnotateInt(ex, "batch", 4)
	rt.AddOpSpan(ex, "HAdd", 2, 500*time.Microsecond, nil)
	rt.AddOpSpan(ex, "LinTrans/hoist", 2, time.Millisecond, nil)
	rt.EndSpanErr(ex, errors.New("integrity"))
	f := rt.Finish(500, errors.New("integrity"))
	if f == nil {
		t.Fatal("Finish returned nil")
	}
	if n := len(f.Spans); n != 5 {
		t.Fatalf("span count = %d, want 5", n)
	}
	if f.Spans[0].Ref != 1 || f.Spans[0].Parent != 0 {
		t.Fatalf("root span malformed: %+v", f.Spans[0])
	}
	byName := map[string]Span{}
	for _, sp := range f.Spans {
		byName[sp.Name] = sp
	}
	if byName["HAdd"].Parent != byName["exec"].Ref {
		t.Fatal("op span not parented under exec")
	}
	if byName["HAdd"].Limbs != 3 {
		t.Fatalf("HAdd limbs = %d, want level+1 = 3", byName["HAdd"].Limbs)
	}
	if byName["exec"].Err != "integrity" {
		t.Fatalf("exec err = %q", byName["exec"].Err)
	}
	if f.RootAttr("tenant") != "t0" {
		t.Fatalf("root attr tenant = %q", f.RootAttr("tenant"))
	}
	if f.Status != 500 || f.Err != "integrity" {
		t.Fatalf("finished status/err = %d/%q", f.Status, f.Err)
	}
	// Mutations after Finish are dropped.
	if ref := rt.StartSpan(0, "late"); ref != 0 {
		t.Fatal("StartSpan after Finish returned a live ref")
	}
	if rt.Finish(200, nil) != nil {
		t.Fatal("double Finish returned non-nil")
	}
	if n := len(f.Spans); n != 5 {
		t.Fatalf("late span leaked into finished trace: %d spans", n)
	}
}

func TestFinishClosesOpenSpans(t *testing.T) {
	rt := NewRequest(NewContext(), "request")
	open := rt.StartSpan(0, "queue")
	time.Sleep(time.Millisecond)
	f := rt.Finish(504, context.DeadlineExceeded)
	for _, sp := range f.Spans {
		if sp.DurNs < 0 {
			t.Fatalf("span %q left open after Finish", sp.Name)
		}
	}
	_ = open
}

func TestConcurrentSpans(t *testing.T) {
	rt := NewRequest(NewContext(), "request")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ref := rt.StartSpan(0, "exec")
				rt.AnnotateInt(ref, "i", int64(i))
				rt.AddOpSpan(ref, "HAdd", 1, time.Microsecond, nil)
				rt.EndSpan(ref)
			}
		}()
	}
	wg.Wait()
	f := rt.Finish(200, nil)
	if len(f.Spans) != 1+8*200*2 {
		t.Fatalf("span count = %d, want %d", len(f.Spans), 1+8*200*2)
	}
}

func TestCoverage(t *testing.T) {
	rt := NewRequest(NewContext(), "request")
	a := rt.StartSpan(0, "a")
	time.Sleep(4 * time.Millisecond)
	rt.EndSpan(a)
	b := rt.StartSpan(0, "b")
	time.Sleep(4 * time.Millisecond)
	rt.EndSpan(b)
	f := rt.Finish(200, nil)
	if cov := f.Coverage(); cov < 0.9 || cov > 1 {
		t.Fatalf("coverage = %.3f, want ~1 (back-to-back children)", cov)
	}
}

func finished(id TraceID, dur time.Duration, status int, err string) *Finished {
	return &Finished{
		TraceID: id.String(),
		Name:    "request",
		StartNs: time.Now().UnixNano(),
		DurNs:   int64(dur),
		Status:  status,
		Err:     err,
		Spans:   []Span{{Ref: 1, Name: "request", DurNs: int64(dur)}},
	}
}

func TestRecorderKeepsErrors(t *testing.T) {
	r := NewFlightRecorder(64, 1000000, 0.95) // sampling effectively off
	var errIDs []string
	for i := 0; i < 500; i++ {
		tc := NewContext()
		if i%50 == 7 {
			f := finished(tc.Trace, time.Millisecond, 504, "deadline")
			errIDs = append(errIDs, f.TraceID)
			r.Offer(f)
		} else {
			r.Offer(finished(tc.Trace, time.Millisecond, 200, ""))
		}
	}
	for _, id := range errIDs {
		f := r.Find(id)
		if f == nil {
			t.Fatalf("errored trace %s not retained", id)
		}
		if f.Keep != "error" {
			t.Fatalf("errored trace kept as %q", f.Keep)
		}
	}
	st := r.Stats()
	if st.KeptError != uint64(len(errIDs)) {
		t.Fatalf("kept_error = %d, want %d", st.KeptError, len(errIDs))
	}
	if st.Total != 500 {
		t.Fatalf("total = %d, want 500", st.Total)
	}
	exs := r.Exemplars()
	if len(exs) == 0 || exs[0].Kind != "error" {
		t.Fatalf("exemplars = %+v, want leading error exemplar", exs)
	}
}

func TestRecorderKeepsSlowTail(t *testing.T) {
	r := NewFlightRecorder(256, 1000000, 0.95)
	// Warm the histogram with a tight fast distribution, then offer a
	// 100x outlier: it must be retained as "slow".
	for i := 0; i < 400; i++ {
		r.Offer(finished(NewContext().Trace, time.Millisecond, 200, ""))
	}
	slow := finished(NewContext().Trace, 100*time.Millisecond, 200, "")
	if !r.Offer(slow) {
		t.Fatal("100x latency outlier dropped")
	}
	if slow.Keep != "slow" {
		t.Fatalf("outlier kept as %q, want slow", slow.Keep)
	}
	st := r.Stats()
	if st.SlowThresholdNs <= int64(time.Millisecond) || st.SlowThresholdNs > int64(100*time.Millisecond) {
		t.Fatalf("slow threshold = %v, want within (1ms, 100ms]", time.Duration(st.SlowThresholdNs))
	}
}

func TestRecorderSamplesRest(t *testing.T) {
	r := NewFlightRecorder(1024, 8, 0.95)
	for i := 0; i < 4000; i++ {
		r.Offer(finished(NewContext().Trace, time.Millisecond, 200, ""))
	}
	st := r.Stats()
	kept := st.KeptSampled
	if kept < 200 || kept > 1200 {
		t.Fatalf("sampled %d of 4000 at 1/8, want roughly 500", kept)
	}
	if st.Total != st.KeptError+st.KeptSlow+st.KeptSampled+st.Dropped {
		t.Fatalf("counter mismatch: %+v", st)
	}
}

func TestRecorderSnapshotNewestFirst(t *testing.T) {
	r := NewFlightRecorder(4, 1, 0.95)
	var last string
	for i := 0; i < 10; i++ {
		f := finished(NewContext().Trace, time.Millisecond, 200, "")
		r.Offer(f)
		last = f.TraceID
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot size = %d, want ring capacity 4", len(snap))
	}
	if snap[0].TraceID != last {
		t.Fatal("snapshot not newest-first")
	}
}

func TestEvalObserverAttachesToActiveScope(t *testing.T) {
	var events []Event
	tr := &Tracer{Events: func(ev Event) { events = append(events, ev) }}
	o := NewEvalObserver(tr)

	// No scope: observations fall through.
	o.ObserveSpan("HAdd", 1, time.Microsecond, nil)

	rt := NewRequest(NewContext(), "request")
	ex := rt.StartSpan(0, "exec")
	o.Activate(rt, ex)
	o.ObserveSpan("PMult", 2, time.Millisecond, nil)
	o.ObserveRecovery("PMult", 2, true, 3*time.Millisecond)
	o.Deactivate()
	o.ObserveSpan("HAdd", 1, time.Microsecond, nil) // after deactivate: dropped

	f := rt.Finish(200, nil)
	var ops, recov int
	for _, sp := range f.Spans {
		switch sp.Name {
		case "PMult":
			ops++
			if sp.Parent != ex {
				t.Fatalf("op span parent = %d, want exec %d", sp.Parent, ex)
			}
		case "recovery":
			recov++
		case "HAdd":
			t.Fatal("observation outside active scope leaked into trace")
		}
	}
	if ops != 1 || recov != 1 {
		t.Fatalf("ops=%d recovery=%d, want 1/1", ops, recov)
	}
	if len(events) != 1 || events[0].Kind != "op-recovery" || events[0].Trace != f.TraceID {
		t.Fatalf("events = %+v, want one op-recovery with trace ID", events)
	}
}

func TestChromeTraceExport(t *testing.T) {
	rt := NewRequest(NewContext(), "request")
	ex := rt.StartSpan(0, "exec")
	rt.AddOpSpan(ex, "Rescale", 2, time.Millisecond, nil)
	rt.EndSpan(ex)
	f := rt.Finish(200, nil)

	var buf strings.Builder
	if err := WriteChromeTrace(&buf, []*Finished{f}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Tid  int            `json:"tid"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	var meta, complete int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			complete++
			if ev.Name == "Rescale" {
				if lvl, ok := ev.Args["level"].(float64); !ok || lvl != 2 {
					t.Fatalf("Rescale level arg = %v", ev.Args["level"])
				}
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if meta != 1 || complete != 3 {
		t.Fatalf("events meta=%d complete=%d, want 1/3", meta, complete)
	}
}

func TestDebugRequestsHandler(t *testing.T) {
	r := NewFlightRecorder(16, 1, 0.95)
	rt := NewRequest(NewContext(), "request")
	rt.Annotate(rt.Root(), "tenant", "acme<script>")
	ex := rt.StartSpan(0, "exec")
	rt.AddOpSpan(ex, "HAdd", 1, time.Millisecond, nil)
	rt.EndSpan(ex)
	f := rt.Finish(200, nil)
	r.Offer(f)

	for _, tt := range []struct {
		url      string
		wantCT   string
		wantBody string
	}{
		{"/debug/requests", "text/html", f.TraceID},
		{"/debug/requests?format=json", "application/json", f.TraceID},
		{"/debug/requests?format=chrome", "application/json", "traceEvents"},
		{"/debug/requests?trace=" + f.TraceID + "&format=json", "application/json", f.TraceID},
	} {
		rec := httptest.NewRecorder()
		r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", tt.url, nil))
		if rec.Code != 200 {
			t.Fatalf("%s: status %d", tt.url, rec.Code)
		}
		if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, tt.wantCT) {
			t.Fatalf("%s: content type %q, want %q", tt.url, ct, tt.wantCT)
		}
		if !strings.Contains(rec.Body.String(), tt.wantBody) {
			t.Fatalf("%s: body missing %q", tt.url, tt.wantBody)
		}
	}
	// Tenant attribute must be escaped in the HTML view.
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/requests", nil))
	if strings.Contains(rec.Body.String(), "<script>") {
		t.Fatal("HTML view does not escape attribute values")
	}
	// JSON round-trips into []*Finished for tracereport.
	rec = httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/requests?format=json", nil))
	var doc struct {
		Stats  RecorderStats `json:"stats"`
		Traces []*Finished   `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Traces) != 1 || len(doc.Traces[0].Spans) != 3 {
		t.Fatalf("JSON round trip lost spans: %+v", doc.Traces)
	}
}

func TestContextPropagation(t *testing.T) {
	ctx := context.Background()
	if From(ctx) != nil {
		t.Fatal("empty context carried a trace")
	}
	if With(ctx, nil) != ctx {
		t.Fatal("With(nil) should be the identity")
	}
	rt := NewRequest(NewContext(), "r")
	if got := From(With(ctx, rt)); got != rt {
		t.Fatal("trace lost in context round trip")
	}
}
