// Package tracing provides request-scoped span trees for the Poseidon
// serving stack: a 128-bit trace context that enters at HTTP ingest (the
// X-Poseidon-Trace header), rides context.Context through admission,
// queueing, batch formation and dispatch, and fans into the evaluator via
// the ckks observer plumbing so per-op and LinTrans phase timings attach
// to the request that caused them. Completed trees land in a fixed-size
// lock-free flight recorder with tail-sampling (see recorder.go) and are
// exported as an HTML/JSON debug page, Chrome trace_event JSON, and
// Prometheus exemplars.
//
// Every entry point is nil-receiver safe: a disabled tracer hands out nil
// *RequestTrace values and every method on them is a cheap nil check, so
// call sites on the evaluator hot path stay zero-allocation when tracing
// is off (the alloc gates in cmd/poseidon benchtrace enforce exactly 0).
package tracing

import (
	cryptorand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"
)

// Header is the HTTP header carrying the trace context: 32 lowercase hex
// digits of trace ID, optionally followed by "-" and 16 hex digits of the
// caller's span ID. The server generates a context when the header is
// absent and always echoes the trace ID in the response.
const Header = "X-Poseidon-Trace"

// TraceID is a 128-bit request identifier, random per request.
type TraceID struct {
	Hi, Lo uint64
}

// IsZero reports whether the ID is unset.
func (t TraceID) IsZero() bool { return t.Hi == 0 && t.Lo == 0 }

// String renders the ID as 32 lowercase hex digits.
func (t TraceID) String() string { return fmt.Sprintf("%016x%016x", t.Hi, t.Lo) }

// Context is the propagated trace context: the request's trace ID plus
// the caller's span ID (zero when the caller did not start a span, e.g. a
// curl invocation minting a bare trace ID).
type Context struct {
	Trace TraceID
	Span  uint64
}

// Valid reports whether the context carries a usable trace ID.
func (c Context) Valid() bool { return !c.Trace.IsZero() }

// Header renders the context in X-Poseidon-Trace wire form.
func (c Context) Header() string {
	if c.Span == 0 {
		return c.Trace.String()
	}
	return fmt.Sprintf("%016x%016x-%016x", c.Trace.Hi, c.Trace.Lo, c.Span)
}

// ErrBadHeader is wrapped by ParseHeader failures.
var ErrBadHeader = errors.New("tracing: malformed trace header")

// ParseHeader parses an X-Poseidon-Trace value. Accepted forms:
// "<32 hex>" and "<32 hex>-<16 hex>"; hex digits may be either case.
func ParseHeader(s string) (Context, error) {
	var c Context
	if len(s) != 32 && len(s) != 49 {
		return c, fmt.Errorf("%w: length %d (want 32 or 49)", ErrBadHeader, len(s))
	}
	hi, ok1 := parseHex16(s[:16])
	lo, ok2 := parseHex16(s[16:32])
	if !ok1 || !ok2 {
		return c, fmt.Errorf("%w: non-hex trace id", ErrBadHeader)
	}
	c.Trace = TraceID{Hi: hi, Lo: lo}
	if len(s) == 49 {
		if s[32] != '-' {
			return c, fmt.Errorf("%w: missing span separator", ErrBadHeader)
		}
		span, ok := parseHex16(s[33:])
		if !ok {
			return c, fmt.Errorf("%w: non-hex span id", ErrBadHeader)
		}
		c.Span = span
	}
	if c.Trace.IsZero() {
		return Context{}, fmt.Errorf("%w: zero trace id", ErrBadHeader)
	}
	return c, nil
}

func parseHex16(s string) (uint64, bool) {
	var v uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return 0, false
		}
		v = v<<4 | d
	}
	return v, true
}

// ID generation: a crypto-seeded base walked by an atomic counter and
// finalized with splitmix64 — unique across the process, no lock, no
// allocation, and no syscall per ID.
var idState atomic.Uint64

func init() {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err == nil {
		idState.Store(binary.LittleEndian.Uint64(b[:]))
	} else {
		idState.Store(0x9e3779b97f4a7c15) // degraded but functional: counter-only IDs
	}
}

func nextID() uint64 {
	for {
		z := idState.Add(1)
		z ^= z >> 30
		z *= 0xbf58476d1ce4e5b9
		z ^= z >> 27
		z *= 0x94d049bb133111eb
		z ^= z >> 31
		if z != 0 {
			return z
		}
	}
}

// NewContext mints a fresh context with a random 128-bit trace ID and no
// caller span.
func NewContext() Context {
	return Context{Trace: TraceID{Hi: nextID(), Lo: nextID()}}
}

// Event is a structured tracing event for out-of-band sinks (the chaos
// campaign's JSONL stream). Events carry the trace ID so campaign output
// joins against the flight recorder.
type Event struct {
	TimeNs  int64  `json:"ts_ns"`
	Kind    string `json:"kind"`              // "job-retry", "op-recovery", ...
	Trace   string `json:"trace,omitempty"`   // 32-hex trace ID
	Layer   string `json:"layer,omitempty"`   // "op" | "job" | "client"
	Attempt int    `json:"attempt,omitempty"` // retry ordinal, 1-based
	Err     string `json:"err,omitempty"`
}

// Tracer bundles a flight recorder with an optional structured-event hook.
// A nil *Tracer disables tracing: NewRequest returns a nil *RequestTrace
// and every downstream call degrades to a nil check.
type Tracer struct {
	Recorder *FlightRecorder
	// Events, when set, receives structured retry/recovery events as they
	// happen. Must be safe for concurrent use and must not block.
	Events func(Event)
}

// NewRequest starts a request trace rooted at a span named name. Returns
// nil (tracing disabled) when the tracer is nil.
func (t *Tracer) NewRequest(tc Context, name string) *RequestTrace {
	if t == nil {
		return nil
	}
	return NewRequest(tc, name)
}

// Offer finishes the hand-off of a completed trace to the flight
// recorder. Nil-safe on every part.
func (t *Tracer) Offer(f *Finished) {
	if t == nil || t.Recorder == nil || f == nil {
		return
	}
	t.Recorder.Offer(f)
}

// Emit forwards a structured event to the Events hook, if any.
func (t *Tracer) Emit(ev Event) {
	if t == nil || t.Events == nil {
		return
	}
	t.Events(ev)
}
