package tracing

import (
	"encoding/json"
	"fmt"
	"html"
	"net/http"
	"sort"
	"time"
)

// Handler serves the flight recorder at /debug/requests:
//
//	(default)        HTML summary — sampling stats plus one expandable
//	                 span tree per retained trace, newest first
//	?format=json     {"stats": RecorderStats, "traces": [Finished...]}
//	?format=chrome   Chrome trace_event JSON (pipe straight into Perfetto)
//	?trace=<32 hex>  restrict to one trace ID
func (r *FlightRecorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		traces := r.Snapshot()
		if id := req.URL.Query().Get("trace"); id != "" {
			if f := r.Find(id); f != nil {
				traces = []*Finished{f}
			} else {
				traces = nil
			}
		}
		switch req.URL.Query().Get("format") {
		case "json":
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(map[string]any{
				"stats":  r.Stats(),
				"traces": traces,
			})
		case "chrome":
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Content-Disposition", `attachment; filename="poseidon-trace.json"`)
			WriteChromeTrace(w, traces)
		default:
			w.Header().Set("Content-Type", "text/html; charset=utf-8")
			writeHTML(w, r.Stats(), traces)
		}
	})
}

func writeHTML(w http.ResponseWriter, st RecorderStats, traces []*Finished) {
	fmt.Fprintf(w, `<!DOCTYPE html><html><head><title>poseidon flight recorder</title><style>
body{font-family:monospace;margin:1.5em;background:#fafafa}
table{border-collapse:collapse}td,th{padding:2px 10px;text-align:left}
details{margin:4px 0}summary{cursor:pointer}
.err{color:#b00020}.slow{color:#b36b00}.sampled{color:#555}
.bar{display:inline-block;height:9px;background:#4a90d9;vertical-align:middle}
.lvl{color:#888}</style></head><body><h2>flight recorder</h2>`)
	fmt.Fprintf(w, `<p>offered %d · kept %d error / %d slow / %d sampled · dropped %d · slow&ge;%s · sample 1/%d · ring %d
 · <a href="?format=json">json</a> · <a href="?format=chrome">chrome trace</a></p>`,
		st.Total, st.KeptError, st.KeptSlow, st.KeptSampled, st.Dropped,
		time.Duration(st.SlowThresholdNs), st.SampleEvery, st.Capacity)
	for _, f := range traces {
		cls := f.Keep
		if cls == "" {
			cls = "sampled"
		}
		status := fmt.Sprintf("%d", f.Status)
		if f.Err != "" {
			status += " " + html.EscapeString(f.Err)
		}
		fmt.Fprintf(w, `<details><summary><span class=%q>[%s]</span> %s <b>%s</b> %s · %v · coverage %.0f%%</summary><table>`,
			cls, cls, time.Unix(0, f.StartNs).Format("15:04:05.000"),
			html.EscapeString(f.Name), f.TraceID, time.Duration(f.DurNs), 100*f.Coverage())
		fmt.Fprintf(w, "<tr><th></th><th>span</th><th>dur</th><th>offset</th><th>attrs</th></tr>")
		writeSpanRows(w, f, 0, 0)
		fmt.Fprintf(w, "<tr><td></td><td>status</td><td colspan=3>%s</td></tr></table></details>\n", status)
	}
	fmt.Fprintf(w, "</body></html>")
}

// writeSpanRows renders the span tree depth-first under parent.
func writeSpanRows(w http.ResponseWriter, f *Finished, parent SpanRef, depth int) {
	if depth > 16 {
		return
	}
	children := make([]Span, 0, 8)
	for _, sp := range f.Spans {
		if sp.Parent == parent && sp.Ref != parent {
			children = append(children, sp)
		}
	}
	sort.Slice(children, func(i, j int) bool { return children[i].StartNs < children[j].StartNs })
	for _, sp := range children {
		indent := ""
		for i := 0; i < depth; i++ {
			indent += "&nbsp;&nbsp;"
		}
		width := 1
		if f.DurNs > 0 {
			width = int(200 * sp.DurNs / f.DurNs)
			if width < 1 {
				width = 1
			}
		}
		attrs := ""
		if sp.Limbs > 0 {
			attrs += fmt.Sprintf(`<span class=lvl>level=%d</span> `, sp.Limbs-1)
		}
		for _, a := range sp.Attrs {
			attrs += html.EscapeString(a.Key) + "=" + html.EscapeString(a.Value) + " "
		}
		name := html.EscapeString(sp.Name)
		if sp.Err != "" {
			name = `<span class=err>` + name + " ✗</span>"
			attrs += `<span class=err>` + html.EscapeString(sp.Err) + "</span>"
		}
		fmt.Fprintf(w, `<tr><td><span class=bar style="width:%dpx"></span></td><td>%s%s</td><td>%v</td><td>+%v</td><td>%s</td></tr>`,
			width, indent, name, time.Duration(sp.DurNs), time.Duration(sp.StartNs-f.StartNs), attrs)
		writeSpanRows(w, f, sp.Ref, depth+1)
	}
}
