package isa

import (
	"strings"
	"testing"

	"poseidon/internal/numeric"
)

func ksConstants(t *testing.T, level int) KeySwitchConstants {
	t.Helper()
	q, err := numeric.GenerateNTTPrimes(45, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	p, err := numeric.GenerateNTTPrimes(46, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	qm := make([]numeric.Modulus, len(q))
	for i := range q {
		qm[i] = numeric.NewModulus(q[i])
	}
	pm := make([]numeric.Modulus, len(p))
	for i := range p {
		pm[i] = numeric.NewModulus(p[i])
	}
	return NewKeySwitchConstants(qm, pm, level)
}

func TestKeySwitchConstantsDigits(t *testing.T) {
	ks := ksConstants(t, 3)
	if len(ks.DigitLo) != 2 {
		t.Fatalf("digits=%d want 2 (level 3, alpha 2)", len(ks.DigitLo))
	}
	if ks.DigitLo[0] != 0 || ks.DigitHi[0] != 2 {
		t.Errorf("digit 0 range [%d,%d) want [0,2)", ks.DigitLo[0], ks.DigitHi[0])
	}
	if ks.DigitLo[1] != 2 || ks.DigitHi[1] != 4 {
		t.Errorf("digit 1 range [%d,%d) want [2,4)", ks.DigitLo[1], ks.DigitHi[1])
	}
	// Partial trailing digit at a lower level.
	ks1 := ksConstants(t, 2)
	if len(ks1.DigitLo) != 2 || ks1.DigitHi[1] != 3 {
		t.Errorf("level-2 digits wrong: %v %v", ks1.DigitLo, ks1.DigitHi)
	}
}

func TestCompileKeySwitchStructure(t *testing.T) {
	ks := ksConstants(t, 3)
	p := CompileKeySwitch(ks, "d2", "key")
	counts := p.OpCounts()

	// Every operator family except Auto participates.
	if counts[NTT] == 0 || counts[INTT] == 0 || counts[MMul] == 0 ||
		counts[MAdd] == 0 || counts[MSub] == 0 || counts[MMulScalar] == 0 {
		t.Errorf("keyswitch op mix incomplete: %v", counts)
	}
	if counts[Auto] != 0 {
		t.Error("keyswitch must not use the automorphism core")
	}
	// Outputs: p0 and p1 per active Q limb.
	if counts[Store] != 2*(ks.Level+1) {
		t.Errorf("stores=%d want %d", counts[Store], 2*(ks.Level+1))
	}
	// Key loads: 2 components × digits × (level+1+alpha) limbs.
	wantKeyLoads := 2 * len(ks.DigitLo) * (ks.Level + 1 + ks.Alpha)
	keyLoads := 0
	for _, in := range p.Instrs {
		if in.Op == Load && strings.HasPrefix(in.Sym, "key.") {
			keyLoads++
		}
	}
	if keyLoads != wantKeyLoads {
		t.Errorf("key loads=%d want %d", keyLoads, wantKeyLoads)
	}
}

func TestCompileRotationStructure(t *testing.T) {
	ks := ksConstants(t, 3)
	p := CompileRotation(ks, 5, "rk")
	counts := p.OpCounts()
	// Automorphism on both components: 2·(level+1).
	if counts[Auto] != 2*(ks.Level+1) {
		t.Errorf("auto ops=%d want %d", counts[Auto], 2*(ks.Level+1))
	}
	if !strings.Contains(p.Name, "g=5") {
		t.Errorf("program name %q should carry the Galois element", p.Name)
	}
}

func TestCompileCMultStructure(t *testing.T) {
	ks := ksConstants(t, 2)
	p := CompileCMult(ks, "rlk")
	counts := p.OpCounts()
	if counts[Auto] != 0 {
		t.Error("CMult must not use the automorphism core")
	}
	// Tensor: 4 MMul per limb plus the keyswitch MACs.
	if counts[MMul] < 4*(ks.Level+1) {
		t.Errorf("MMul=%d, want ≥ %d for the tensor alone", counts[MMul], 4*(ks.Level+1))
	}
	// Inputs: both ciphertexts on every limb.
	loads := 0
	for _, in := range p.Instrs {
		if in.Op == Load && (strings.HasPrefix(in.Sym, "a.") || strings.HasPrefix(in.Sym, "b.")) {
			loads++
		}
	}
	if loads != 4*(ks.Level+1) {
		t.Errorf("ciphertext loads=%d want %d", loads, 4*(ks.Level+1))
	}
}
