package isa

import (
	"strings"
	"testing"
)

func TestOpcodeStrings(t *testing.T) {
	want := map[Opcode]string{
		Load: "LOAD", Store: "STORE", MAdd: "MADD", MSub: "MSUB",
		MMul: "MMUL", MMulScalar: "MMULS", NTT: "NTT", INTT: "INTT",
		Auto: "AUTO", Copy: "COPY",
	}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("opcode %d: %q want %q", int(op), op.String(), s)
		}
	}
}

func TestBuilderRegisterAllocation(t *testing.T) {
	b := NewBuilder("t")
	r0 := b.Load("x", 0)
	r1 := b.Load("y", 0)
	r2 := b.Bin(MAdd, r0, r1, 0)
	b.Store("z", r2, 0)
	p := b.Build()
	if p.NumReg != 3 {
		t.Errorf("NumReg=%d want 3", p.NumReg)
	}
	if len(p.Instrs) != 4 {
		t.Errorf("instrs=%d want 4", len(p.Instrs))
	}
	if r0 == r1 || r1 == r2 {
		t.Error("registers must be distinct")
	}
}

func TestInstrString(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: Load, Dst: 1, Sym: "a.c0", Limb: 2}, "LOAD  r1, [a.c0] (q2)"},
		{Instr{Op: Store, A: 3, Sym: "out", Limb: 0}, "STORE [out], r3 (q0)"},
		{Instr{Op: MAdd, Dst: 2, A: 0, B: 1, Limb: 1}, "MADD  r2, r0, r1 (q1)"},
		{Instr{Op: Auto, Dst: 4, A: 2, Imm: 5, Limb: 0}, "AUTO  r4, r2, g=5 (q0)"},
		{Instr{Op: MMulScalar, Dst: 1, A: 0, Imm: 7, Limb: 0}, "MMULS r1, r0, #7 (q0)"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String()=%q want %q", got, c.want)
		}
	}
}

func TestCompiledProgramsStructure(t *testing.T) {
	// Rescale must chain INTT → MSub → MMULS → NTT per surviving limb.
	qlInv := []uint64{1, 1}
	p := CompileRescale(3, qlInv)
	counts := p.OpCounts()
	if counts[INTT] != 4 || counts[NTT] != 4 || counts[MSub] != 4 || counts[MMulScalar] != 4 {
		t.Errorf("Rescale structure wrong: %v", counts)
	}
	// Automorphism program mentions the Galois element in its name.
	if !strings.Contains(CompileAutomorphism(1, 25).Name, "25") {
		t.Error("automorphism program name should carry the Galois element")
	}
}

func TestCompileRescalePanicsOnShortInverses(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("short inverse slice should panic")
		}
	}()
	CompileRescale(4, []uint64{1})
}
