// Package isa defines the operator-level instruction set of the Poseidon
// datapath: the programs the control logic issues to the operator cores.
// Each instruction names scratchpad vectors (one RNS limb each, N residues)
// and an operator core family; the machine package executes programs both
// functionally (on real residues) and temporally (accumulating the same
// cycle/byte costs the analytic model charges).
//
// This is the executable form of the paper's Table I: every FHE basic
// operation is a short program over the five shared operators.
package isa

import "fmt"

// Opcode selects an operator core or a memory transfer.
type Opcode int

const (
	// Load streams a vector from HBM into a scratchpad buffer.
	Load Opcode = iota
	// Store streams a scratchpad buffer back to HBM.
	Store
	// MAdd: Dst[i] = (A[i] + B[i]) mod q — the MA core.
	MAdd
	// MSub: Dst[i] = (A[i] − B[i]) mod q — MA core (subtract mode).
	MSub
	// MMul: Dst[i] = (A[i] · B[i]) mod q — the MM core (SBT folded in).
	MMul
	// MMulScalar: Dst[i] = (A[i] · Imm) mod q — MM core, scalar operand.
	MMulScalar
	// NTT transforms a buffer to the evaluation domain (fused radix-2^k).
	NTT
	// INTT transforms back to the coefficient domain.
	INTT
	// Auto applies the Galois automorphism X ↦ X^Imm (HFAuto core).
	Auto
	// Copy duplicates a buffer inside the scratchpad.
	Copy
	numOpcodes
)

// String returns the mnemonic.
func (o Opcode) String() string {
	switch o {
	case Load:
		return "LOAD"
	case Store:
		return "STORE"
	case MAdd:
		return "MADD"
	case MSub:
		return "MSUB"
	case MMul:
		return "MMUL"
	case MMulScalar:
		return "MMULS"
	case NTT:
		return "NTT"
	case INTT:
		return "INTT"
	case Auto:
		return "AUTO"
	case Copy:
		return "COPY"
	}
	return fmt.Sprintf("OP(%d)", int(o))
}

// Reg identifies a scratchpad buffer holding one limb vector.
type Reg int

// Instr is one datapath instruction. Limb selects the modulus the operator
// reduces under. For Load/Store, Sym names the HBM-resident vector; Imm
// carries the scalar operand or Galois element.
type Instr struct {
	Op   Opcode
	Dst  Reg
	A, B Reg
	Limb int
	Imm  uint64
	Sym  string
}

// String renders the instruction in assembly-like form.
func (in Instr) String() string {
	switch in.Op {
	case Load:
		return fmt.Sprintf("%-5s r%d, [%s] (q%d)", in.Op, in.Dst, in.Sym, in.Limb)
	case Store:
		return fmt.Sprintf("%-5s [%s], r%d (q%d)", in.Op, in.Sym, in.A, in.Limb)
	case MMulScalar:
		return fmt.Sprintf("%-5s r%d, r%d, #%d (q%d)", in.Op, in.Dst, in.A, in.Imm, in.Limb)
	case Auto:
		return fmt.Sprintf("%-5s r%d, r%d, g=%d (q%d)", in.Op, in.Dst, in.A, in.Imm, in.Limb)
	case NTT, INTT, Copy:
		return fmt.Sprintf("%-5s r%d, r%d (q%d)", in.Op, in.Dst, in.A, in.Limb)
	default:
		return fmt.Sprintf("%-5s r%d, r%d, r%d (q%d)", in.Op, in.Dst, in.A, in.B, in.Limb)
	}
}

// Program is an instruction sequence with its register budget.
type Program struct {
	Name   string
	NumReg int
	Instrs []Instr
}

// Builder assembles programs with automatic register allocation.
type Builder struct {
	p    *Program
	next Reg
}

// NewBuilder starts a program.
func NewBuilder(name string) *Builder {
	return &Builder{p: &Program{Name: name}}
}

// Alloc reserves a fresh scratchpad register.
func (b *Builder) Alloc() Reg {
	r := b.next
	b.next++
	if int(b.next) > b.p.NumReg {
		b.p.NumReg = int(b.next)
	}
	return r
}

// Emit appends an instruction.
func (b *Builder) Emit(in Instr) {
	b.p.Instrs = append(b.p.Instrs, in)
}

// Load emits a LOAD of HBM symbol sym (limb `limb`) into a fresh register.
func (b *Builder) Load(sym string, limb int) Reg {
	r := b.Alloc()
	b.Emit(Instr{Op: Load, Dst: r, Limb: limb, Sym: sym})
	return r
}

// Store emits a STORE of register r to HBM symbol sym.
func (b *Builder) Store(sym string, r Reg, limb int) {
	b.Emit(Instr{Op: Store, A: r, Limb: limb, Sym: sym})
}

// Bin emits a two-operand core op into a fresh register.
func (b *Builder) Bin(op Opcode, a, c Reg, limb int) Reg {
	r := b.Alloc()
	b.Emit(Instr{Op: op, Dst: r, A: a, B: c, Limb: limb})
	return r
}

// Unary emits a one-operand core op (NTT/INTT/Copy/Auto/MMulScalar).
func (b *Builder) Unary(op Opcode, a Reg, limb int, imm uint64) Reg {
	r := b.Alloc()
	b.Emit(Instr{Op: op, Dst: r, A: a, Limb: limb, Imm: imm})
	return r
}

// Build finalizes the program.
func (b *Builder) Build() *Program { return b.p }
