package isa

import "fmt"

// Compile targets: each function lowers one FHE basic operation into an
// operator-level program over `limbs` RNS limbs. HBM symbols follow the
// convention "<name>.<component>" with per-limb addressing handled by the
// machine (symbol + limb index identify one vector).
//
// The programs make the paper's operator-reuse claim concrete: HAdd is MA
// alone; PMult is MM alone; Rescale chains INTT/MA/MM/NTT; Rotation chains
// Auto with the keyswitch pipeline.

// CompileHAdd lowers ct-ct addition: out = a + b component-wise.
func CompileHAdd(limbs int) *Program {
	b := NewBuilder("HAdd")
	for _, comp := range []string{"c0", "c1"} {
		for l := 0; l < limbs; l++ {
			x := b.Load("a."+comp, l)
			y := b.Load("b."+comp, l)
			z := b.Bin(MAdd, x, y, l)
			b.Store("out."+comp, z, l)
		}
	}
	return b.Build()
}

// CompilePMult lowers ct-pt multiplication (NTT domain): out = ct ⊙ pt.
func CompilePMult(limbs int) *Program {
	b := NewBuilder("PMult")
	for _, comp := range []string{"c0", "c1"} {
		for l := 0; l < limbs; l++ {
			x := b.Load("a."+comp, l)
			y := b.Load("pt.m", l)
			z := b.Bin(MMul, x, y, l)
			b.Store("out."+comp, z, l)
		}
	}
	return b.Build()
}

// CompileNTT lowers a full-polynomial forward transform.
func CompileNTT(limbs int) *Program {
	b := NewBuilder("NTT")
	for l := 0; l < limbs; l++ {
		x := b.Load("a.m", l)
		y := b.Unary(NTT, x, l, 0)
		b.Store("out.m", y, l)
	}
	return b.Build()
}

// CompileAutomorphism lowers the index-mapping operator on both ciphertext
// components (coefficient domain).
func CompileAutomorphism(limbs int, galois uint64) *Program {
	b := NewBuilder(fmt.Sprintf("Automorphism(g=%d)", galois))
	for _, comp := range []string{"c0", "c1"} {
		for l := 0; l < limbs; l++ {
			x := b.Load("a."+comp, l)
			y := b.Unary(Auto, x, l, galois)
			b.Store("out."+comp, y, l)
		}
	}
	return b.Build()
}

// CompileRescale lowers the RNS rescale of one ciphertext: INTT, centered
// correction against the dropped limb, scale by q_l^{-1}, NTT back.
// qlInv[l] must hold [q_last^{-1}]_{q_l}; qlMod[l] holds [q_last]_{q_l};
// half is q_last/2 (used by the machine's MSub centering — here the
// centering is folded into the dropped-limb symbol prepared by the host).
func CompileRescale(limbs int, qlInv []uint64) *Program {
	if len(qlInv) < limbs-1 {
		panic("isa: need an inverse per surviving limb")
	}
	b := NewBuilder("Rescale")
	for _, comp := range []string{"c0", "c1"} {
		// The host pre-centers the dropped limb per target modulus and
		// publishes it as "<comp>.last.<l>" vectors; the datapath then
		// runs MA (subtract) + MM (by q_last^{-1}) + the transforms.
		for l := 0; l < limbs-1; l++ {
			x := b.Load("a."+comp, l)
			xc := b.Unary(INTT, x, l, 0)
			last := b.Load("a."+comp+".last", l)
			diff := b.Bin(MSub, xc, last, l)
			scaled := b.Unary(MMulScalar, diff, l, qlInv[l])
			out := b.Unary(NTT, scaled, l, 0)
			b.Store("out."+comp, out, l)
		}
	}
	return b.Build()
}

// OpCounts tallies instructions per opcode — the static operator mix.
func (p *Program) OpCounts() map[Opcode]int {
	m := map[Opcode]int{}
	for _, in := range p.Instrs {
		m[in.Op]++
	}
	return m
}
