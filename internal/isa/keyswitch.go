package isa

import (
	"fmt"

	"poseidon/internal/numeric"
)

// The full hybrid keyswitch as an operator program — the paper's Keyswitch
// pipeline running entirely on the five shared cores: per-digit RNSconv
// (MM/MA cascades), NTT of the extended digits, MAC against the streamed
// key digits (MM/MA), ModDown (MM/MA), and the final transforms. The basis
// conversions are the approximate (correction-free) hardware form; the
// small overflow folds into keyswitch noise.

// KeySwitchConstants holds every scalar the program embeds for one level.
// The machine's modulus chain must be laid out [Q..., P...].
type KeySwitchConstants struct {
	Level int // active Q limbs − 1
	Alpha int // |P|
	LQ    int // |Q| (full chain length; limbs Level+1..LQ-1 are inactive)

	// Per digit d: BHatInv[d][j] for the digit's own limbs (indexed from
	// the digit's lo), and BHatMod[d][t][j] for every active target limb t
	// (machine limb index: 0..Level for Q, LQ..LQ+Alpha-1 for P).
	DigitLo, DigitHi []int
	BHatInv          [][]uint64
	BHatMod          [][][]uint64

	// ModDown: conversion P → Q plus [P^-1]_{q_i}.
	MDBHatInv []uint64   // per P limb
	MDBHatMod [][]uint64 // [qLimb][pLimb]
	PInv      []uint64   // per active Q limb
}

// NewKeySwitchConstants derives the constants for keyswitching at `level`
// over main basis q (full chain) and special basis p, with digit width
// alpha = len(p).
func NewKeySwitchConstants(q, p []numeric.Modulus, level int) KeySwitchConstants {
	alpha := len(p)
	ks := KeySwitchConstants{Level: level, Alpha: alpha, LQ: len(q)}
	digits := (level + 1 + alpha - 1) / alpha

	targets := make([]numeric.Modulus, 0, level+1+alpha)
	targets = append(targets, q[:level+1]...)
	targets = append(targets, p...)

	for d := 0; d < digits; d++ {
		lo := d * alpha
		hi := lo + alpha
		if hi > level+1 {
			hi = level + 1
		}
		src := q[lo:hi]
		conv := NewRNSConvConstants(src, targets)
		ks.DigitLo = append(ks.DigitLo, lo)
		ks.DigitHi = append(ks.DigitHi, hi)
		ks.BHatInv = append(ks.BHatInv, conv.BHatInv)
		ks.BHatMod = append(ks.BHatMod, conv.BHatModC)
	}

	md := NewModDownConstants(q[:level+1], p)
	ks.MDBHatInv = md.Conv.BHatInv
	ks.MDBHatMod = md.Conv.BHatModC
	ks.PInv = md.PInv
	return ks
}

// targetLimb maps an active-target index (0..level, then P) to the machine
// limb index.
func (ks KeySwitchConstants) targetLimb(t int) int {
	if t <= ks.Level {
		return t
	}
	return ks.LQ + (t - ks.Level - 1)
}

// compileKeySwitchInto emits the keyswitch of coefficient-domain registers
// in[0..level] (already loaded) against key digit symbols
// "<key>.b<d>"/"<key>.a<d>", leaving the two NTT-domain outputs over the
// active Q limbs in the returned register slices.
func (ks KeySwitchConstants) compileKeySwitchInto(b *Builder, in []Reg, key string) (p0, p1 []Reg) {
	level := ks.Level
	alpha := ks.Alpha
	nTargets := level + 1 + alpha
	digits := len(ks.DigitLo)

	acc0 := make([]Reg, nTargets)
	acc1 := make([]Reg, nTargets)
	accSet := false

	for d := 0; d < digits; d++ {
		lo, hi := ks.DigitLo[d], ks.DigitHi[d]
		// y_j = in_j · (B/b_j)^{-1} under the digit's own moduli.
		ys := make([]Reg, hi-lo)
		for j := lo; j < hi; j++ {
			ys[j-lo] = b.Unary(MMulScalar, in[j], j, ks.BHatInv[d][j-lo])
		}
		for t := 0; t < nTargets; t++ {
			limb := ks.targetLimb(t)
			var ext Reg
			if t >= lo && t < hi {
				ext = in[t] // digit-own limb passes through
			} else {
				for j := range ys {
					term := b.Unary(MMulScalar, ys[j], limb, ks.BHatMod[d][t][j])
					if j == 0 {
						ext = term
					} else {
						ext = b.Bin(MAdd, ext, term, limb)
					}
				}
			}
			nttExt := b.Unary(NTT, ext, limb, 0)
			kb := b.Load(fmt.Sprintf("%s.b%d", key, d), limb)
			ka := b.Load(fmt.Sprintf("%s.a%d", key, d), limb)
			t0 := b.Bin(MMul, nttExt, kb, limb)
			t1 := b.Bin(MMul, nttExt, ka, limb)
			if !accSet {
				acc0[t] = t0
				acc1[t] = t1
			} else {
				acc0[t] = b.Bin(MAdd, acc0[t], t0, limb)
				acc1[t] = b.Bin(MAdd, acc1[t], t1, limb)
			}
		}
		accSet = true
	}

	// ModDown both accumulators: INTT, convert the P part to Q, subtract,
	// scale by P^{-1}, NTT back.
	modDown := func(acc []Reg) []Reg {
		coeff := make([]Reg, nTargets)
		for t := 0; t < nTargets; t++ {
			coeff[t] = b.Unary(INTT, acc[t], ks.targetLimb(t), 0)
		}
		ys := make([]Reg, alpha)
		for j := 0; j < alpha; j++ {
			limb := ks.LQ + j
			ys[j] = b.Unary(MMulScalar, coeff[level+1+j], limb, ks.MDBHatInv[j])
		}
		out := make([]Reg, level+1)
		for i := 0; i <= level; i++ {
			var conv Reg
			for j := 0; j < alpha; j++ {
				term := b.Unary(MMulScalar, ys[j], i, ks.MDBHatMod[i][j])
				if j == 0 {
					conv = term
				} else {
					conv = b.Bin(MAdd, conv, term, i)
				}
			}
			diff := b.Bin(MSub, coeff[i], conv, i)
			scaled := b.Unary(MMulScalar, diff, i, ks.PInv[i])
			out[i] = b.Unary(NTT, scaled, i, 0)
		}
		return out
	}
	return modDown(acc0), modDown(acc1)
}

// CompileKeySwitch lowers a standalone keyswitch: input symbol `in`
// (coefficient domain, active Q limbs), key digits under `key`, outputs
// "out.p0"/"out.p1" in the NTT domain.
func CompileKeySwitch(ks KeySwitchConstants, in, key string) *Program {
	b := NewBuilder(fmt.Sprintf("KeySwitch(level=%d)", ks.Level))
	regs := make([]Reg, ks.Level+1)
	for l := 0; l <= ks.Level; l++ {
		regs[l] = b.Load(in, l)
	}
	p0, p1 := ks.compileKeySwitchInto(b, regs, key)
	for l := 0; l <= ks.Level; l++ {
		b.Store("out.p0", p0[l], l)
		b.Store("out.p1", p1[l], l)
	}
	return b.Build()
}

// CompileCMult lowers a complete ciphertext-ciphertext multiplication with
// relinearization: the degree-2 tensor product on the MM/MA cores, INTT of
// d2, the keyswitch against the relinearization key, and the final
// accumulation. Inputs "a.c0"/"a.c1"/"b.c0"/"b.c1" are NTT-domain; outputs
// "out.c0"/"out.c1" are NTT-domain.
func CompileCMult(ks KeySwitchConstants, key string) *Program {
	b := NewBuilder(fmt.Sprintf("CMult(level=%d)", ks.Level))
	level := ks.Level

	d0 := make([]Reg, level+1)
	d1 := make([]Reg, level+1)
	d2c := make([]Reg, level+1)
	for l := 0; l <= level; l++ {
		a0 := b.Load("a.c0", l)
		a1 := b.Load("a.c1", l)
		b0 := b.Load("b.c0", l)
		b1 := b.Load("b.c1", l)
		d0[l] = b.Bin(MMul, a0, b0, l)
		x := b.Bin(MMul, a0, b1, l)
		y := b.Bin(MMul, a1, b0, l)
		d1[l] = b.Bin(MAdd, x, y, l)
		d2 := b.Bin(MMul, a1, b1, l)
		d2c[l] = b.Unary(INTT, d2, l, 0)
	}
	p0, p1 := ks.compileKeySwitchInto(b, d2c, key)
	for l := 0; l <= level; l++ {
		c0 := b.Bin(MAdd, d0[l], p0[l], l)
		c1 := b.Bin(MAdd, d1[l], p1[l], l)
		b.Store("out.c0", c0, l)
		b.Store("out.c1", c1, l)
	}
	return b.Build()
}

// CompileRotation lowers a complete Rotation: automorphism of both
// components (coefficient domain inputs "a.c0"/"a.c1"), keyswitch of the
// automorphed c1 against the rotation key, and the final accumulation.
// Outputs "out.c0"/"out.c1" in the NTT domain.
func CompileRotation(ks KeySwitchConstants, galois uint64, key string) *Program {
	b := NewBuilder(fmt.Sprintf("Rotation(g=%d,level=%d)", galois, ks.Level))
	level := ks.Level

	// σ_g on both components.
	a1 := make([]Reg, level+1)
	for l := 0; l <= level; l++ {
		c1 := b.Load("a.c1", l)
		a1[l] = b.Unary(Auto, c1, l, galois)
	}
	p0, p1 := ks.compileKeySwitchInto(b, a1, key)
	for l := 0; l <= level; l++ {
		c0 := b.Load("a.c0", l)
		ac0 := b.Unary(Auto, c0, l, galois)
		nttC0 := b.Unary(NTT, ac0, l, 0)
		sum := b.Bin(MAdd, nttC0, p0[l], l)
		b.Store("out.c0", sum, l)
		b.Store("out.c1", p1[l], l)
	}
	return b.Build()
}
