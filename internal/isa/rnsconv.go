package isa

import "poseidon/internal/numeric"

// RNSconv as an operator program — the paper's Fig 4: instead of dedicated
// vector-scalar cores, basis conversion cascades the MM and MA cores.
// For each source limb j: y_j = x_j · (B/b_j)^{-1} mod b_j (one MMULS);
// for each target modulus c_i: acc = Σ_j y_j · (B/b_j) mod c_i (an
// MMULS/MADD chain). Hardware performs the *approximate* conversion — the
// float correction software applies is absorbed as keyswitch noise — so
// the program's result may exceed the exact value by a small multiple of
// B, which downstream ModDown tolerates (and tests verify).

// RNSConvConstants precomputes the per-limb scalars the program embeds.
type RNSConvConstants struct {
	BHatInv  []uint64   // [(B/b_j)^-1]_{b_j}, per source limb
	BHatModC [][]uint64 // [i][j] = (B/b_j) mod c_i
}

// NewRNSConvConstants derives the constants from the source and destination
// moduli.
func NewRNSConvConstants(src, dst []numeric.Modulus) RNSConvConstants {
	l := len(src)
	c := RNSConvConstants{
		BHatInv:  make([]uint64, l),
		BHatModC: make([][]uint64, len(dst)),
	}
	for j := 0; j < l; j++ {
		prod := uint64(1)
		for t := 0; t < l; t++ {
			if t != j {
				prod = src[j].Mul(prod, src[j].Reduce(src[t].Q))
			}
		}
		c.BHatInv[j] = src[j].Inv(prod)
	}
	for i := range dst {
		c.BHatModC[i] = make([]uint64, l)
		for j := 0; j < l; j++ {
			prod := uint64(1)
			for t := 0; t < l; t++ {
				if t != j {
					prod = dst[i].Mul(prod, dst[i].Reduce(src[t].Q))
				}
			}
			c.BHatModC[i][j] = prod
		}
	}
	return c
}

// CompileRNSConv lowers the conversion of symbol `in` (source limbs
// 0..len(BHatInv)-1 of the machine's chain) into `out` limbs srcLen..,
// where the machine's modulus chain is laid out [src..., dst...]. The
// y_j intermediates are computed once and reused across every target limb
// — the operator-reuse pattern of Fig 4.
func CompileRNSConv(consts RNSConvConstants, in, out string) *Program {
	b := NewBuilder("RNSconv")
	srcLen := len(consts.BHatInv)
	ys := make([]Reg, srcLen)
	for j := 0; j < srcLen; j++ {
		x := b.Load(in, j)
		ys[j] = b.Unary(MMulScalar, x, j, consts.BHatInv[j])
	}
	for i := range consts.BHatModC {
		limb := srcLen + i
		var acc Reg
		for j := 0; j < srcLen; j++ {
			// y_j lives under modulus b_j but is < b_j < c_i·2 in general;
			// the hardware re-reduces under c_i inside the MM core. The
			// machine models this by evaluating MMULS under the target
			// limb's modulus.
			term := b.Unary(MMulScalar, ys[j], limb, consts.BHatModC[i][j])
			if j == 0 {
				acc = term
			} else {
				acc = b.Bin(MAdd, acc, term, limb)
			}
		}
		b.Store(out, acc, limb)
	}
	return b.Build()
}

// CompileModUp lowers Eq. 3: the input stays on its own limbs and the
// RNSconv extension writes the new limbs.
func CompileModUp(consts RNSConvConstants, in, out string) *Program {
	p := CompileRNSConv(consts, in, out)
	p.Name = "ModUp"
	// Pass the original limbs through unchanged.
	b := &Builder{p: p, next: Reg(p.NumReg)}
	for j := range consts.BHatInv {
		r := b.Load(in, j)
		b.Store(out, r, j)
	}
	return b.Build()
}

// ModDownConstants extends the conversion constants with [P^-1]_{q_i}.
type ModDownConstants struct {
	Conv RNSConvConstants // P → Q conversion
	PInv []uint64         // [P^-1]_{q_i} per Q limb
}

// NewModDownConstants derives ModDown scalars for main basis Q (machine
// limbs 0..len(Q)-1) and special basis P (machine limbs len(Q)..).
func NewModDownConstants(q, p []numeric.Modulus) ModDownConstants {
	md := ModDownConstants{Conv: NewRNSConvConstants(p, q)}
	md.PInv = make([]uint64, len(q))
	for i, qi := range q {
		prod := uint64(1)
		for _, pj := range p {
			prod = qi.Mul(prod, qi.Reduce(pj.Q))
		}
		md.PInv[i] = qi.Inv(prod)
	}
	return md
}

// CompileModDown lowers Eq. 2: out_i = (aQ_i − conv(aP)_i)·P^{-1} mod q_i.
// The machine's chain must be laid out [Q..., P...]; symbol inQ carries the
// Q limbs (indices 0..len(Q)-1) and inP the P limbs at indices len(Q)...
func CompileModDown(md ModDownConstants, inQ, inP, out string) *Program {
	b := NewBuilder("ModDown")
	lq := len(md.PInv)
	lp := len(md.Conv.BHatInv)

	// y_j from the P limbs (stored at machine limbs lq+j).
	ys := make([]Reg, lp)
	for j := 0; j < lp; j++ {
		x := b.Load(inP, lq+j)
		ys[j] = b.Unary(MMulScalar, x, lq+j, md.Conv.BHatInv[j])
	}
	for i := 0; i < lq; i++ {
		var conv Reg
		for j := 0; j < lp; j++ {
			term := b.Unary(MMulScalar, ys[j], i, md.Conv.BHatModC[i][j])
			if j == 0 {
				conv = term
			} else {
				conv = b.Bin(MAdd, conv, term, i)
			}
		}
		a := b.Load(inQ, i)
		diff := b.Bin(MSub, a, conv, i)
		res := b.Unary(MMulScalar, diff, i, md.PInv[i])
		b.Store(out, res, i)
	}
	return b.Build()
}
