package poseidon

import (
	"sync"
	"testing"
)

// Two goroutines hammering a shared kit's evaluator under telemetry must
// lose no observations: the histogram totals equal the op counts both
// goroutines performed. Run under -race (the CI race step includes this
// package) this also proves the collector's lock-free record path is sound.
func TestTelemetryConcurrentEvaluators(t *testing.T) {
	params, err := NewParameters(ParametersLiteral{
		LogN:     10,
		LogQ:     []int{50, 40, 40},
		LogP:     []int{51, 51},
		LogScale: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	kit := NewKit(params, 701)
	collector := kit.EnableTelemetry("race")

	const perG, goroutines = 50, 2
	ct := kit.EncryptReals([]float64{1, 2, 3, 4})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				x := kit.Eval.Add(ct, ct)        // HAdd
				y := kit.Eval.MulRelin(x, ct)    // CMult
				_ = kit.Eval.Rescale(y)          // Rescale
				_ = kit.Eval.Rotate(ct, 1)       // Rotation
			}
		}(g)
	}
	wg.Wait()

	agg := collector.Snapshot().ByKind()
	const want = perG * goroutines
	for _, op := range []string{"HAdd", "CMult", "Rescale", "Rotation"} {
		found := false
		for _, ks := range agg {
			if ks.Op != op {
				continue
			}
			found = true
			if ks.Ops != want {
				t.Errorf("%s: %d ops observed, want %d", op, ks.Ops, want)
			}
			if ks.Count != ks.Ops {
				t.Errorf("%s: histogram holds %d samples for %d ops", op, ks.Count, ks.Ops)
			}
			if ks.SumNs == 0 || ks.MaxNs == 0 {
				t.Errorf("%s: timed samples lost their durations: %+v", op, ks)
			}
		}
		if !found {
			t.Errorf("no %s telemetry recorded", op)
		}
	}
	if unknown := collector.UnknownOps(); unknown != 0 {
		t.Errorf("collector dropped %d observations as unknown", unknown)
	}
}
