package poseidon

import (
	"poseidon/internal/ckks"
)

// Kit bundles everything a quick-start user needs: keys, encoder,
// encryptor, decryptor and a fully keyed evaluator with rotation keys for
// power-of-two steps.
type Kit struct {
	Params *Parameters
	Enc    *Encoder
	SK     *SecretKey
	PK     *PublicKey
	RLK    *RelinearizationKey
	RTK    *RotationKeySet
	Encr   *Encryptor
	Decr   *Decryptor
	Eval   *Evaluator
}

// NewKit generates all key material from the seed and returns a ready-to-use
// toolkit. Rotation keys cover ±2^i steps plus conjugation, enough for
// rotate-and-sum reductions over the full slot vector.
func NewKit(params *Parameters, seed int64) *Kit {
	kgen := ckks.NewKeyGenerator(params, seed)
	sk := kgen.GenSecretKey()
	pk := kgen.GenPublicKey(sk)
	rlk := kgen.GenRelinearizationKey(sk)
	var steps []int
	for s := 1; s < params.Slots; s <<= 1 {
		steps = append(steps, s, -s)
	}
	rtk := kgen.GenRotationKeys(sk, steps, true)
	return &Kit{
		Params: params,
		Enc:    ckks.NewEncoder(params),
		SK:     sk,
		PK:     pk,
		RLK:    rlk,
		RTK:    rtk,
		Encr:   ckks.NewEncryptor(params, pk, seed+1),
		Decr:   ckks.NewDecryptor(params, sk),
		Eval:   ckks.NewEvaluator(params, rlk, rtk),
	}
}

// SetWorkers re-routes the kit's evaluator through a limb-parallel pool of
// n workers (n ≤ 0 selects the shared GOMAXPROCS-sized pool, 1 is fully
// serial). Results are bit-identical for every worker count; see the
// differential suite in internal/ckks.
func (k *Kit) SetWorkers(n int) { k.Eval = k.Eval.WithWorkers(n) }

// Workers reports the evaluator's current limb-parallel worker bound.
func (k *Kit) Workers() int { return k.Eval.Workers() }

// EncryptValues encodes and encrypts a complex vector at the top level and
// default scale.
func (k *Kit) EncryptValues(values []complex128) *Ciphertext {
	pt := k.Enc.Encode(values, k.Params.MaxLevel(), k.Params.Scale)
	return k.Encr.Encrypt(pt)
}

// EncryptReals encodes and encrypts a real vector.
func (k *Kit) EncryptReals(values []float64) *Ciphertext {
	cs := make([]complex128, len(values))
	for i, v := range values {
		cs[i] = complex(v, 0)
	}
	return k.EncryptValues(cs)
}

// DecryptValues decrypts and decodes back to the slot vector.
func (k *Kit) DecryptValues(ct *Ciphertext) []complex128 {
	return k.Enc.Decode(k.Decr.Decrypt(ct))
}

// InnerSum rotates-and-adds so that slot 0 of the result holds the sum of
// the first n slots (n must be a power of two) — the standard reduction
// every rotation-based workload builds on.
func (k *Kit) InnerSum(ct *Ciphertext, n int) *Ciphertext {
	if n < 1 || n&(n-1) != 0 {
		panic("poseidon: InnerSum width must be a power of two")
	}
	acc := ct
	for s := 1; s < n; s <<= 1 {
		acc = k.Eval.Add(acc, k.Eval.Rotate(acc, s))
	}
	return acc
}
