package poseidon

import (
	"fmt"

	"poseidon/internal/ckks"
	"poseidon/internal/telemetry"
)

// Kit bundles everything a quick-start user needs: keys, encoder,
// encryptor, decryptor and a fully keyed evaluator with rotation keys for
// power-of-two steps.
type Kit struct {
	Params *Parameters
	Enc    *Encoder
	SK     *SecretKey
	PK     *PublicKey
	RLK    *RelinearizationKey
	RTK    *RotationKeySet
	Encr   *Encryptor
	Decr   *Decryptor
	Eval   *Evaluator

	// tele is the kit's installed telemetry collector (nil when telemetry
	// is off); telePrev remembers the observer that was installed before
	// EnableTelemetry so DisableTelemetry can restore it.
	tele     *telemetry.Collector
	telePrev ckks.OpObserver

	// kgen is retained so key material generated after construction
	// (LinearTransformKeys) continues the same deterministic random stream
	// instead of reusing the seed — regenerating from the seed would reuse
	// the (a, e) samples across different Galois targets.
	kgen *ckks.KeyGenerator
}

// NewKit generates all key material from the seed and returns a ready-to-use
// toolkit. Rotation keys cover ±2^i steps plus conjugation, enough for
// rotate-and-sum reductions over the full slot vector.
func NewKit(params *Parameters, seed int64) *Kit {
	kgen := ckks.NewKeyGenerator(params, seed)
	sk := kgen.GenSecretKey()
	pk := kgen.GenPublicKey(sk)
	rlk := kgen.GenRelinearizationKey(sk)
	var steps []int
	for s := 1; s < params.Slots; s <<= 1 {
		steps = append(steps, s, -s)
	}
	rtk := kgen.GenRotationKeys(sk, steps, true)
	return &Kit{
		Params: params,
		Enc:    ckks.NewEncoder(params),
		SK:     sk,
		PK:     pk,
		RLK:    rlk,
		RTK:    rtk,
		Encr:   ckks.NewEncryptor(params, pk, seed+1),
		Decr:   ckks.NewDecryptor(params, sk),
		Eval:   ckks.NewEvaluator(params, rlk, rtk),
		kgen:   kgen,
	}
}

// LinearTransformKeys provisions rotation keys for exactly the Galois
// elements lt's evaluation plan needs (lt.Plan().GaloisElements()) and
// merges them into the kit's key set. The kit's evaluator holds the same
// RotationKeySet, so the new keys are usable immediately — no rebuild,
// observers and guards stay installed. Elements already covered by the
// power-of-two ladder are regenerated harmlessly (same secret, fresh
// randomness). Returns the Galois elements provisioned — the list a serving
// tenant uploads alongside the transform.
func (k *Kit) LinearTransformKeys(lt *LinearTransform) []uint64 {
	gals := lt.Plan().GaloisElements()
	fresh := k.kgen.GenGaloisKeys(k.SK, gals)
	for g, swk := range fresh.Keys {
		k.RTK.Keys[g] = swk
	}
	return gals
}

// SetWorkers re-routes the kit's evaluator through a limb-parallel pool of
// n workers (n ≤ 0 selects the shared GOMAXPROCS-sized pool, 1 is fully
// serial). Results are bit-identical for every worker count; see the
// differential suite in internal/ckks.
func (k *Kit) SetWorkers(n int) { k.Eval = k.Eval.WithWorkers(n) }

// Workers reports the evaluator's current limb-parallel worker bound.
func (k *Kit) Workers() int { return k.Eval.Workers() }

// SetFusionDegree switches every NTT in the kit onto the fused radix-2^k
// kernels (k in [1, 6]; 0 restores plain radix-2). Plans are built once per
// degree and cached on the parameters' rings, so the toggle is cheap after
// first use; results are bit-identical for every setting. k=3 is the
// measured sweet spot on amd64 (see BENCH_kernels.json).
func (k *Kit) SetFusionDegree(degree int) error {
	return k.Params.SetFusionDegree(degree)
}

// FusionDegree reports the kit's selected NTT fusion degree (0 = radix-2).
func (k *Kit) FusionDegree() int { return k.Params.FusionDegree() }

// EncryptValues encodes and encrypts a complex vector at the top level and
// default scale.
func (k *Kit) EncryptValues(values []complex128) *Ciphertext {
	pt := k.Enc.Encode(values, k.Params.MaxLevel(), k.Params.Scale)
	return k.Encr.Encrypt(pt)
}

// EncryptReals encodes and encrypts a real vector.
func (k *Kit) EncryptReals(values []float64) *Ciphertext {
	cs := make([]complex128, len(values))
	for i, v := range values {
		cs[i] = complex(v, 0)
	}
	return k.EncryptValues(cs)
}

// DecryptValues decrypts and decodes back to the slot vector.
func (k *Kit) DecryptValues(ct *Ciphertext) []complex128 {
	return k.Enc.Decode(k.Decr.Decrypt(ct))
}

// InnerSum rotates-and-adds so that slot 0 of the result holds the sum of
// the first n slots (n must be a power of two) — the standard reduction
// every rotation-based workload builds on. Panics on invalid input; use
// TryInnerSum for an error-returning variant.
func (k *Kit) InnerSum(ct *Ciphertext, n int) *Ciphertext {
	out, err := k.TryInnerSum(ct, n)
	if err != nil {
		panic(err.Error())
	}
	return out
}

// --- Error-returning API ----------------------------------------------------
//
// The Try variants mirror the panicking convenience methods but validate
// their inputs and recover internal panics, so no input — malformed
// ciphertexts included — can take the process down. Failures carry the
// ckks sentinel errors (ErrInvalidInput, ErrKeyMissing, ErrIntegrity, …)
// wrapped in operation context; match them with errors.Is.

// recoverKit converts a panic escaping a kit entry point into an error,
// preserving typed *ckks.OpError panics and wrapping anything else in
// ErrInternal so the public API never panics on malformed input.
func recoverKit(op string, err *error) {
	if r := recover(); r != nil {
		if oe, ok := r.(*ckks.OpError); ok {
			*err = oe
			return
		}
		*err = &ckks.OpError{Op: op, Level: -1, Limb: -1, Err: ckks.ErrInternal, Detail: fmt.Sprint(r)}
	}
}

// TryEncryptValues encodes and encrypts a complex vector at the top level
// and default scale, rejecting vectors longer than the slot count.
func (k *Kit) TryEncryptValues(values []complex128) (ct *Ciphertext, err error) {
	defer recoverKit("EncryptValues", &err)
	if len(values) > k.Params.Slots {
		return nil, &ckks.OpError{
			Op: "EncryptValues", Level: -1, Limb: -1, Err: ckks.ErrInvalidInput,
			Detail: fmt.Sprintf("%d values exceed %d slots", len(values), k.Params.Slots),
		}
	}
	pt := k.Enc.Encode(values, k.Params.MaxLevel(), k.Params.Scale)
	return k.Encr.Encrypt(pt), nil
}

// TryDecryptValues decrypts and decodes back to the slot vector. When
// integrity guards are enabled the ciphertext's checksum seal is verified
// first, so a corrupted result is reported as ErrIntegrity instead of
// silently decoding garbage.
func (k *Kit) TryDecryptValues(ct *Ciphertext) (values []complex128, err error) {
	defer recoverKit("DecryptValues", &err)
	if ct == nil || ct.C0 == nil || ct.C1 == nil {
		return nil, &ckks.OpError{
			Op: "DecryptValues", Level: -1, Limb: -1, Err: ckks.ErrInvalidInput,
			Detail: "nil ciphertext",
		}
	}
	if k.Eval.GuardsEnabled() {
		if verr := k.Eval.VerifyIntegrity(ct); verr != nil {
			return nil, verr
		}
	}
	return k.Enc.Decode(k.Decr.Decrypt(ct)), nil
}

// TryInnerSum is InnerSum with input validation and typed errors: a
// non-power-of-two width is ErrInvalidInput, a missing rotation key is
// ErrKeyMissing.
func (k *Kit) TryInnerSum(ct *Ciphertext, n int) (out *Ciphertext, err error) {
	defer recoverKit("InnerSum", &err)
	if n < 1 || n&(n-1) != 0 {
		return nil, &ckks.OpError{
			Op: "InnerSum", Level: -1, Limb: -1, Err: ckks.ErrInvalidInput,
			Detail: fmt.Sprintf("width %d is not a power of two", n),
		}
	}
	acc := ct
	for s := 1; s < n; s <<= 1 {
		rot, rerr := k.Eval.TryRotate(acc, s)
		if rerr != nil {
			return nil, rerr
		}
		sum, aerr := k.Eval.TryAdd(acc, rot)
		if aerr != nil {
			return nil, aerr
		}
		acc = sum
	}
	return acc, nil
}

// EnableGuards switches the kit's evaluator into fault-detecting mode:
// inputs and outputs of every Try operation are sealed with per-limb
// residue checksums and verified at operator boundaries, and the noise
// budget is checked before multiplications. See Evaluator.EnableGuards.
func (k *Kit) EnableGuards(seed int64) { k.Eval.EnableGuards(seed) }

// DisableGuards turns integrity guarding back off.
func (k *Kit) DisableGuards() { k.Eval.DisableGuards() }

// GuardStats snapshots the evaluator's guard counters.
func (k *Kit) GuardStats() ckks.GuardStats { return k.Eval.GuardStats() }

// EnableTelemetry installs a telemetry collector on the kit's evaluator:
// every basic operation's wall time lands in a per-(op, limb-count) latency
// histogram, ready for Prometheus/expvar export and model calibration. Any
// observer already installed (e.g. a TraceRecorder) keeps receiving its
// callbacks via a fanout. Returns the collector; calling again while
// telemetry is enabled returns the existing collector unchanged.
func (k *Kit) EnableTelemetry(workload string) *telemetry.Collector {
	if k.tele != nil {
		return k.tele
	}
	k.telePrev = k.Eval.Observer()
	k.tele = telemetry.NewCollector(workload)
	k.Eval.SetObserver(ckks.Fanout(k.telePrev, k.tele))
	return k.tele
}

// Metrics returns the installed telemetry collector, or nil when telemetry
// is off.
func (k *Kit) Metrics() *telemetry.Collector { return k.tele }

// DisableTelemetry removes the collector and restores whatever observer was
// installed before EnableTelemetry. The detached collector (and its
// accumulated histograms) remains readable.
func (k *Kit) DisableTelemetry() {
	if k.tele == nil {
		return
	}
	k.Eval.SetObserver(k.telePrev)
	k.tele, k.telePrev = nil, nil
}
