package poseidon

import (
	"math/rand"
	"testing"

	"poseidon/internal/trace"
)

// Validate the hand-built PackedBootstrapping workload trace against the
// real implementation: run the functional bootstrapper under a recorder
// and compare the operation mix. The workload generator models the big-N
// configuration, so absolute counts differ, but the structure — rotations
// and plaintext multiplications in the transforms, ciphertext products in
// EvalMod, rescales throughout — must match.
func TestWorkloadTraceMatchesRealBootstrap(t *testing.T) {
	if testing.Short() {
		t.Skip("functional bootstrap is expensive")
	}
	logQ := []int{55}
	for i := 0; i < 27; i++ {
		logQ = append(logQ, 45)
	}
	params, err := NewParameters(ParametersLiteral{
		LogN:     9,
		LogQ:     logQ,
		LogP:     []int{52, 52, 52, 52, 52},
		LogScale: 45,
	})
	if err != nil {
		t.Fatal(err)
	}
	enc := NewEncoder(params)
	kgen := NewKeyGenerator(params, 700)
	sk := kgen.GenSecretKey()
	pk := kgen.GenPublicKey(sk)
	encr := NewEncryptor(params, pk, 701)

	boot, err := NewBootstrapper(params, enc, kgen, sk, BootstrapConfig{K: 28})
	if err != nil {
		t.Fatal(err)
	}
	rec := NewTraceRecorder("recorded-bootstrap")
	boot.Evaluator().SetObserver(rec)

	rng := rand.New(rand.NewSource(702))
	z := make([]complex128, params.Slots)
	for i := range z {
		z[i] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
	}
	ct := encr.Encrypt(enc.Encode(z, 0, params.Scale))
	if _, err := boot.Bootstrap(ct); err != nil {
		t.Fatal(err)
	}

	recorded := rec.Trace().CountByKind()
	t.Logf("recorded bootstrap op mix: %v", recorded)

	// Structural claims the workload generator encodes:
	// every kind it emits must actually occur in the real pipeline.
	for _, k := range []trace.Kind{trace.HAdd, trace.PMult, trace.CMult, trace.Rotation, trace.Rescale} {
		if recorded[k] == 0 {
			t.Errorf("real bootstrap performed no %v, but the workload trace models them", k)
		}
	}
	// CMult count is driven by the Chebyshev products; the generator models
	// ~14 per EvalMod half at full packing. The real run (degree ~216 sine
	// at N=2^9) lands in the tens — same order.
	if recorded[trace.CMult] < 10 || recorded[trace.CMult] > 400 {
		t.Errorf("recorded CMult count %v outside the modeled order of magnitude", recorded[trace.CMult])
	}
	// The slot transforms run on the double-hoisted engine, which records
	// one LinTrans op per giant-step group instead of a Rotation per BSGS
	// step; together with the remaining explicit rotations they must still
	// dominate the CMult count (the transform share of the pipeline).
	if recorded[trace.LinTrans] == 0 {
		t.Error("real bootstrap recorded no LinTrans groups from the slot transforms")
	}
	if recorded[trace.LinTrans]+recorded[trace.Rotation] < recorded[trace.CMult]/4 {
		t.Errorf("transform groups + rotations (%v + %v) implausibly few vs CMult (%v)",
			recorded[trace.LinTrans], recorded[trace.Rotation], recorded[trace.CMult])
	}

	// The recorded trace prices on the accelerator like any workload.
	model, err := NewModel(U280(), PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	rep := Simulate(model, DefaultEnergy(), rec.Trace())
	if rep.TotalTime <= 0 {
		t.Error("recorded bootstrap trace must be priceable")
	}
	t.Logf("recorded bootstrap priced at %.1f ms on the modeled U280 (big-N workload model: ~112 ms)",
		rep.TotalTime*1e3)
}
