package poseidon

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
)

// Benchmarks for the limb-parallel execution engine: every sub-benchmark
// runs once with workers=1 (serial reference) and once with
// workers=GOMAXPROCS, on the paper-scale N=2^12, 6-limb parameter set.
// Results are bit-identical across worker counts (see the differential
// suite in internal/ckks), so the delta is pure execution-engine speedup.
// Run with `go test -bench=Parallel -benchmem`; numbers are recorded in
// EXPERIMENTS.md. On a single-core runner (GOMAXPROCS=1) the two
// configurations coincide and the ratio is ~1.0×.

func parallelBenchKit(b *testing.B) *Kit {
	b.Helper()
	params, err := NewParameters(ParametersLiteral{
		LogN:     12,
		LogQ:     []int{55, 45, 45, 45, 45, 45},
		LogP:     []int{58, 58},
		LogScale: 45,
	})
	if err != nil {
		b.Fatal(err)
	}
	return NewKit(params, 17)
}

// benchWorkerCounts: the serial reference and the full machine.
func benchWorkerCounts() []int {
	counts := []int{1}
	if p := runtime.GOMAXPROCS(0); p > 1 {
		counts = append(counts, p)
	} else {
		counts = append(counts, 1) // single-core: both runs serial, ratio 1.0×
	}
	return counts
}

func BenchmarkParallelEvaluator(b *testing.B) {
	kit := parallelBenchKit(b)
	rng := rand.New(rand.NewSource(23))
	z := make([]float64, kit.Params.Slots)
	for i := range z {
		z[i] = rng.Float64()*2 - 1
	}
	ct1 := kit.EncryptReals(z)
	ct2 := kit.EncryptReals(z)
	hoistSteps := []int{1, -1, 2, -2, 4, -4, 8, -8}

	cases := []struct {
		name string
		run  func(ev *Evaluator)
	}{
		{"CMult", func(ev *Evaluator) { ev.MulRelin(ct1, ct2) }},
		{"Keyswitch", func(ev *Evaluator) { ev.Rotate(ct1, 1) }},
		{"RotateHoisted8", func(ev *Evaluator) { ev.RotateHoisted(ct1, hoistSteps) }},
		{"Rescale", func(ev *Evaluator) { ev.Rescale(ct1) }},
	}
	for _, tc := range cases {
		for _, w := range benchWorkerCounts() {
			ev := kit.Eval.WithWorkers(w)
			b.Run(fmt.Sprintf("%s/workers=%d", tc.name, w), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					tc.run(ev)
				}
			})
		}
	}
}

// BenchmarkParallelBootstrapSlot refreshes one exhausted ciphertext — the
// deepest pipeline in the library (ModRaise → CoeffToSlot → EvalMod →
// SlotToCoeff), dominated by hoisted rotations and keyswitches.
func BenchmarkParallelBootstrapSlot(b *testing.B) {
	logQ := []int{55}
	for i := 0; i < 27; i++ {
		logQ = append(logQ, 45)
	}
	params, err := NewParameters(ParametersLiteral{
		LogN:     9,
		LogQ:     logQ,
		LogP:     []int{52, 52, 52, 52, 52},
		LogScale: 45,
	})
	if err != nil {
		b.Fatal(err)
	}
	enc := NewEncoder(params)
	kgen := NewKeyGenerator(params, 11)
	sk := kgen.GenSecretKey()
	pk := kgen.GenPublicKey(sk)
	encr := NewEncryptor(params, pk, 12)
	boot, err := NewBootstrapper(params, enc, kgen, sk, BootstrapConfig{K: 28})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	z := make([]complex128, params.Slots)
	for i := range z {
		z[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	ct := encr.Encrypt(enc.Encode(z, 0, params.Scale))

	for _, w := range benchWorkerCounts() {
		boot.SetWorkers(w)
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := boot.Bootstrap(ct); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
