// Package poseidon is a software reproduction of "Poseidon: Practical
// Homomorphic Encryption Accelerator" (HPCA 2023): a complete RNS-CKKS
// homomorphic encryption library built from the paper's five reusable
// operators (ModAdd, ModMult, NTT with radix-2^k fusion, HFAuto
// automorphism, shared Barrett reduction), together with a performance,
// resource and energy model of the FPGA+HBM accelerator the paper builds
// from them.
//
// The package is a façade: it re-exports the scheme (ckks), the
// accelerator model (arch), the benchmark workloads and the operator-level
// building blocks so downstream users need a single import.
//
// Quick start:
//
//	params, _ := poseidon.NewParameters(poseidon.ParametersLiteral{
//	    LogN: 12, LogQ: []int{55, 45, 45, 45}, LogP: []int{58, 58}, LogScale: 45,
//	})
//	kit := poseidon.NewKit(params, 1)
//	ct := kit.EncryptValues([]complex128{1 + 2i, 3})
//	sq := kit.Eval.MulRelin(ct, ct)
//	fmt.Println(kit.DecryptValues(kit.Eval.Rescale(sq))[:2]) // ≈ (-3+4i), 9
//
// And the accelerator side:
//
//	model, _ := poseidon.NewModel(poseidon.U280(), poseidon.PaperParams())
//	rep := poseidon.Simulate(model, poseidon.DefaultEnergy(),
//	    poseidon.BenchmarkLR(poseidon.PaperWorkloadSpec()))
//	fmt.Printf("LR on Poseidon: %.1f ms\n", rep.TotalTime*1e3)
package poseidon

import (
	"poseidon/internal/arch"
	"poseidon/internal/ckks"
	"poseidon/internal/server"
	"poseidon/internal/telemetry"
	"poseidon/internal/trace"
	"poseidon/internal/workloads"
)

// --- Scheme (RNS-CKKS) ----------------------------------------------------

// Parameters fixes a CKKS instance (ring degree, modulus chains, scale).
type Parameters = ckks.Parameters

// ParametersLiteral specifies parameters by prime bit sizes.
type ParametersLiteral = ckks.ParametersLiteral

// NewParameters instantiates a parameter literal.
func NewParameters(lit ParametersLiteral) (*Parameters, error) {
	return ckks.NewParameters(lit)
}

// TestParameters returns a small, fast parameter set.
func TestParameters() (*Parameters, error) { return ckks.TestParameters() }

// Core scheme types.
type (
	// Encoder maps complex vectors to ring plaintexts (canonical embedding).
	Encoder = ckks.Encoder
	// Plaintext is an encoded message.
	Plaintext = ckks.Plaintext
	// Ciphertext is a degree-1 RNS-CKKS ciphertext.
	Ciphertext = ckks.Ciphertext
	// SecretKey / PublicKey / evaluation keys.
	SecretKey = ckks.SecretKey
	// PublicKey is an encryption of zero used by the encryptor.
	PublicKey = ckks.PublicKey
	// RelinearizationKey switches s² → s after CMult.
	RelinearizationKey = ckks.RelinearizationKey
	// RotationKeySet holds Galois keys per rotation step.
	RotationKeySet = ckks.RotationKeySet
	// KeyGenerator samples key material deterministically from a seed.
	KeyGenerator = ckks.KeyGenerator
	// Encryptor encrypts plaintexts under a public key.
	Encryptor = ckks.Encryptor
	// Decryptor recovers plaintexts with the secret key.
	Decryptor = ckks.Decryptor
	// Evaluator executes the homomorphic basic operations.
	Evaluator = ckks.Evaluator
	// LinearTransform is an encoded slot-matrix multiplication (BSGS).
	LinearTransform = ckks.LinearTransform
	// LinearTransformPlan is a transform's cached evaluation schedule:
	// sorted baby steps, giant-step groups, and the exact Galois element
	// set to provision keys for (GaloisElements).
	LinearTransformPlan = ckks.LinearTransformPlan
	// LinTransStats counts the work one linear-transform evaluation did
	// (keyswitches, ModDown sweeps, NTT limbs) — the benchlinalg observable.
	LinTransStats = ckks.LinTransStats
	// Bootstrapper refreshes exhausted ciphertexts.
	Bootstrapper = ckks.Bootstrapper
	// BootstrapConfig tunes the bootstrapping pipeline.
	BootstrapConfig = ckks.BootstrapConfig
)

// Scheme constructors.
var (
	NewEncoder          = ckks.NewEncoder
	NewKeyGenerator     = ckks.NewKeyGenerator
	NewEncryptor        = ckks.NewEncryptor
	NewDecryptor        = ckks.NewDecryptor
	NewEvaluator        = ckks.NewEvaluator
	NewCiphertext       = ckks.NewCiphertext
	NewLinearTransform  = ckks.NewLinearTransform
	// NewLinearTransformBSGS exposes the baby-step width n1 (0 = auto √n);
	// the double-hoisted path often profits from widths above √n.
	NewLinearTransformBSGS = ckks.NewLinearTransformBSGS
	NewBootstrapper     = ckks.NewBootstrapper
	ChebyshevCoeffsOf   = ckks.ChebyshevCoefficients
	EvalChebyshevScalar = ckks.EvalChebyshevScalar
)

// --- Typed error surface ----------------------------------------------------

// OpError is the error type returned by every Try* method: a sentinel
// (below) wrapped in operation context. Match the sentinel with errors.Is
// and recover the context with errors.As.
type OpError = ckks.OpError

// GuardStats counts integrity-guard activity on an evaluator.
type GuardStats = ckks.GuardStats

// RecoveryPolicy makes an evaluator transparently re-execute Try* ops that
// fail integrity verification (Evaluator.SetRecoveryPolicy).
type RecoveryPolicy = ckks.RecoveryPolicy

// RecoveryStats counts op re-executions and their outcomes.
type RecoveryStats = ckks.RecoveryStats

// Sentinel errors carried by OpError; see internal/ckks/errors.go.
var (
	// ErrLevelExhausted: the modulus chain cannot absorb the operation.
	ErrLevelExhausted = ckks.ErrLevelExhausted
	// ErrScaleMismatch: additive operands disagree on scale.
	ErrScaleMismatch = ckks.ErrScaleMismatch
	// ErrAliasedDestination: an Into destination aliases an operand that
	// must remain readable.
	ErrAliasedDestination = ckks.ErrAliasedDestination
	// ErrIntegrity: a runtime integrity guard detected corrupted limb data.
	ErrIntegrity = ckks.ErrIntegrity
	// ErrKeyMissing: the evaluator lacks the required evaluation key.
	ErrKeyMissing = ckks.ErrKeyMissing
	// ErrInvalidInput: a malformed argument (nil, wrong geometry, bad width).
	ErrInvalidInput = ckks.ErrInvalidInput
	// ErrCorrupt: serialized bytes failed structural validation.
	ErrCorrupt = ckks.ErrCorrupt
	// ErrInternal: an unexpected panic recovered at the API boundary.
	ErrInternal = ckks.ErrInternal
)

// --- Accelerator model ------------------------------------------------------

// Config is an accelerator design point (lanes, fusion degree, clock, HBM).
type Config = arch.Config

// FHEParams is the ciphertext geometry a model evaluates under.
type FHEParams = arch.FHEParams

// Model prices FHE basic operations on a design point.
type Model = arch.Model

// Profile is the cost of one basic operation.
type Profile = arch.Profile

// Operator identifies an operator core family (MA, MM, NTT, Auto).
type Operator = arch.Operator

// EnergyModel converts operation counts into energy.
type EnergyModel = arch.EnergyModel

// Report is a simulated benchmark result.
type Report = arch.Report

// Resources counts FPGA primitives.
type Resources = arch.Resources

// CoreResources is the per-core-family resource model.
type CoreResources = arch.CoreResources

// AutoKind selects the automorphism core design (HFAuto vs naive).
type AutoKind = arch.AutoKind

// HBMGeometry is the channel-level memory-system model.
type HBMGeometry = arch.HBMGeometry

// NoiseEstimator measures slot precision against references.
type NoiseEstimator = ckks.NoiseEstimator

// Accelerator constructors and presets.
var (
	U280               = arch.U280
	U280HBM            = arch.U280HBM
	SmartSSD           = arch.SmartSSD
	NDPEnergy          = arch.NDPEnergy
	PaperParams        = arch.PaperParams
	NewModel           = arch.NewModel
	DefaultEnergy      = arch.DefaultEnergy
	Simulate           = arch.Simulate
	SimulateOverlapped = arch.SimulateOverlapped
	NewCoreResources   = arch.NewCoreResources
	NewNoiseEstimator  = ckks.NewNoiseEstimator
)

// Operator core families.
const (
	OpMA   = arch.MA
	OpMM   = arch.MM
	OpNTT  = arch.NTT
	OpAuto = arch.Auto
	OpMem  = arch.Mem
)

// Automorphism core designs.
const (
	HFAutoCore    = arch.HFAutoCore
	NaiveAutoCore = arch.NaiveAutoCore
)

// --- Telemetry --------------------------------------------------------------

// OpObserver receives a count-only callback per evaluator basic operation.
type OpObserver = ckks.OpObserver

// SpanObserver additionally receives each operation's wall time and outcome.
type SpanObserver = ckks.SpanObserver

// Collector accumulates per-(op, limb-count) latency histograms; install it
// with Kit.EnableTelemetry or Eval.SetObserver.
type Collector = telemetry.Collector

// MetricsSnapshot is a point-in-time view of a collector.
type MetricsSnapshot = telemetry.Snapshot

// MetricsServer is the optional /metrics + /debug/pprof HTTP endpoint.
type MetricsServer = telemetry.Server

// CalibStats joins measured per-op wall time with model predictions.
type CalibStats = trace.CalibStats

// KindCalib is one operation kind's measured-vs-modeled calibration row.
type KindCalib = trace.KindCalib

// Telemetry constructors and helpers.
var (
	// NewCollector creates a standalone collector for a named workload.
	NewCollector = telemetry.NewCollector
	// StartMetricsServer serves a collector on addr ("127.0.0.1:0" for an
	// ephemeral port): /metrics, /debug/vars, /debug/pprof.
	StartMetricsServer = telemetry.StartServer
	// Calibrate computes per-kind measured/modeled ratios for a snapshot.
	Calibrate = telemetry.Calibrate
	// Fanout combines observers so a recorder and a collector can watch the
	// same evaluator.
	Fanout = ckks.Fanout
	// ProfileDo runs fn under pprof labels {workload, phase}.
	ProfileDo = telemetry.Do
)

// --- Serving ---------------------------------------------------------------

// Hoisted is a reusable key-switch digit decomposition: decompose once with
// Evaluator.Hoist (or TryHoist), rotate by many step counts, then Release.
type Hoisted = ckks.Hoisted

// EvalServer is the multi-tenant batching evaluation server behind
// cmd/poseidond: hardened wire decoding, a refcounted LRU key registry,
// and a scheduler that fuses compatible requests into one evaluator pass.
type EvalServer = server.EvalServer

// EvalServerConfig sizes an EvalServer (batching, queue depth, registry
// capacity, admission-control thresholds).
type EvalServerConfig = server.Config

// EvalServerStats is a point-in-time snapshot of serving counters
// (batch occupancy, hoist sharing, degradation mode, rejections).
type EvalServerStats = server.Stats

// ServeClient is a thin HTTP client for the poseidond wire protocol.
type ServeClient = server.Client

// EvalRequest is one evaluation request in the serving wire envelope.
type EvalRequest = server.EvalRequest

// KeyUpload carries a tenant's evaluation keys to /v1/keys.
type KeyUpload = server.KeyUpload

// ServeOp names the operation an EvalRequest asks for.
type ServeOp = server.Op

// Serving opcodes.
const (
	ServeOpAdd       = server.OpAdd
	ServeOpSub       = server.OpSub
	ServeOpMulRelin  = server.OpMulRelin
	ServeOpRescale   = server.OpRescale
	ServeOpRotate    = server.OpRotate
	ServeOpConjugate = server.OpConjugate
	ServeOpInnerSum  = server.OpInnerSum
	ServeOpNegate    = server.OpNegate
)

// Serving error sentinels (test with errors.Is; the HTTP layer maps them
// to 400 / 404 / 503 respectively).
var (
	ErrBadRequest    = server.ErrBadRequest
	ErrUnknownTenant = server.ErrUnknownTenant
	ErrOverloaded    = server.ErrOverloaded
)

// Serving constructors and wire codecs.
var (
	// NewEvalServer builds a serving stack from a config; Close drains it.
	NewEvalServer = server.NewEvalServer
	// EncodeEvalRequest / DecodeEvalRequest round-trip the binary eval
	// envelope POSTed to /v1/eval.
	EncodeEvalRequest = server.EncodeEvalRequest
	DecodeEvalRequest = server.DecodeEvalRequest
	// EncodeKeyUpload / DecodeKeyUpload round-trip the key envelope.
	EncodeKeyUpload = server.EncodeKeyUpload
	DecodeKeyUpload = server.DecodeKeyUpload
	// ParseServeOp maps an op name ("rotate", "mulrelin", ...) to its code.
	ParseServeOp = server.ParseOp
)

// --- Workloads and traces --------------------------------------------------

// Trace is an operation-level execution trace.
type Trace = trace.Trace

// TraceOp is one batched basic operation in a trace.
type TraceOp = trace.Op

// WorkloadSpec fixes the geometry a workload trace is generated for.
type WorkloadSpec = workloads.Spec

// Benchmark workload generators (the paper's Table V).
var (
	PaperWorkloadSpec   = workloads.PaperSpec
	BenchmarkLR         = workloads.LR
	BenchmarkLSTM       = workloads.LSTM
	BenchmarkResNet20   = workloads.ResNet20
	BenchmarkPackedBoot = workloads.PackedBootstrapping
	BenchmarkAll        = workloads.All
)
