// Command poseidond serves multi-tenant CKKS evaluation over HTTP — the
// FHE-as-a-service front end to this repository's evaluator. Tenants
// upload evaluation keys to /v1/keys, post binary evaluation envelopes to
// /v1/eval, and scrape scheduler/arena/latency gauges from the telemetry
// endpoint. Compatible requests are batched through one evaluator pass
// with hoisted-rotation sharing; admission control sheds load when arena
// bytes or the request p99 cross their ceilings.
//
// Quickstart:
//
//	poseidond -demo demo/ &          # writes demo/keys.bin + demo/eval.bin
//	curl --data-binary @demo/keys.bin http://127.0.0.1:8080/v1/keys
//	curl --data-binary @demo/eval.bin http://127.0.0.1:8080/v1/eval -o result.bin
//	curl http://127.0.0.1:8080/v1/health
//	curl http://127.0.0.1:9090/metrics
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"poseidon/internal/ckks"
	"poseidon/internal/server"
	"poseidon/internal/telemetry"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "evaluation API listen address")
		metricsAddr = flag.String("metrics", "127.0.0.1:9090", "telemetry listen address ('' disables)")
		logN        = flag.Int("logn", 11, "ring degree log2")
		workers     = flag.Int("workers", 0, "evaluator worker goroutines (0 = GOMAXPROCS)")
		maxBatch    = flag.Int("max-batch", 16, "max requests fused into one batch")
		flush       = flag.Duration("flush", 2*time.Millisecond, "max wait for a batch to fill")
		queueDepth  = flag.Int("queue", 256, "dispatch queue depth")
		registryCap = flag.Int("registry-cap", 64, "resident tenant key sets")
		maxArenaMB  = flag.Int64("max-arena-mb", 0, "arena-bytes admission ceiling in MiB (0 = off)")
		maxP99      = flag.Duration("max-p99", 0, "request-p99 admission ceiling (0 = off)")
		guardSeed   = flag.Int64("guard-seed", 1, "integrity guard seed (0 disables guards)")
		demoDir     = flag.String("demo", "", "write curl-able demo request files to this directory")
	)
	flag.Parse()

	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN:     *logN,
		LogQ:     []int{50, 40, 40, 40},
		LogP:     []int{51, 51},
		LogScale: 40,
		Workers:  *workers,
	})
	if err != nil {
		log.Fatalf("parameters: %v", err)
	}

	col := telemetry.NewCollector("poseidond")
	srv, err := server.NewEvalServer(server.Config{
		Params:          params,
		MaxBatch:        *maxBatch,
		FlushTimeout:    *flush,
		QueueDepth:      *queueDepth,
		RegistryCap:     *registryCap,
		MaxArenaBytes:   *maxArenaMB << 20,
		MaxP99:          *maxP99,
		GuardSeed:       *guardSeed,
		Collector:       col,
		DegradeCooldown: 2 * time.Second,
	})
	if err != nil {
		log.Fatalf("server: %v", err)
	}

	if *demoDir != "" {
		if err := writeDemo(*demoDir, params); err != nil {
			log.Fatalf("demo: %v", err)
		}
	}

	var ms *telemetry.Server
	if *metricsAddr != "" {
		ms, err = telemetry.StartServer(*metricsAddr, col)
		if err != nil {
			log.Fatalf("metrics: %v", err)
		}
		log.Printf("telemetry on http://%s/metrics", ms.Addr())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	api := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := api.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Fatalf("serve: %v", err)
		}
	}()
	log.Printf("poseidond serving LogN=%d on http://%s (batch ≤%d, flush %v, registry cap %d)",
		*logN, ln.Addr(), *maxBatch, *flush, *registryCap)

	// Graceful shutdown: stop accepting, drain in-flight API requests,
	// drain the dispatch queue, then drain metrics scrapes.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Print("shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := api.Shutdown(ctx); err != nil {
		log.Printf("api shutdown: %v", err)
	}
	srv.Close()
	if ms != nil {
		if err := ms.Shutdown(ctx); err != nil {
			log.Printf("metrics shutdown: %v", err)
		}
	}
	log.Print("drained")
}

// writeDemo generates a throwaway tenant ("demo") and writes ready-to-curl
// binary envelopes: keys.bin registers the tenant's evaluation keys,
// eval.bin rotates an encrypted 1..8 ramp by one slot. The secret key
// stays in demo/sk.bin so a later session can decrypt the response.
func writeDemo(dir string, params *ckks.Parameters) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	kgen := ckks.NewKeyGenerator(params, time.Now().UnixNano())
	sk := kgen.GenSecretKey()
	pk := kgen.GenPublicKey(sk)
	rlk := kgen.GenRelinearizationKey(sk)
	rtk := kgen.GenRotationKeys(sk, []int{1, 2, 4}, true)

	rlkBytes, err := rlk.MarshalBinary()
	if err != nil {
		return err
	}
	rtkBytes, err := rtk.MarshalBinary()
	if err != nil {
		return err
	}
	keys := server.EncodeKeyUpload(&server.KeyUpload{Tenant: "demo", Relin: rlkBytes, Rotations: rtkBytes})
	if err := os.WriteFile(filepath.Join(dir, "keys.bin"), keys, 0o644); err != nil {
		return err
	}

	enc := ckks.NewEncoder(params)
	encr := ckks.NewEncryptor(params, pk, time.Now().UnixNano()+1)
	z := make([]complex128, params.Slots)
	for i := range z {
		z[i] = complex(float64(i%8+1), 0)
	}
	ctBytes, err := encr.Encrypt(enc.Encode(z, params.MaxLevel(), params.Scale)).MarshalBinary()
	if err != nil {
		return err
	}
	eval := server.EncodeEvalRequest(&server.EvalRequest{Tenant: "demo", Op: server.OpRotate, Steps: 1, Ct: ctBytes})
	if err := os.WriteFile(filepath.Join(dir, "eval.bin"), eval, 0o644); err != nil {
		return err
	}
	skBytes, err := sk.MarshalBinary()
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "sk.bin"), skBytes, 0o600); err != nil {
		return err
	}
	fmt.Printf("demo files in %s: curl --data-binary @%s/keys.bin http://<addr>/v1/keys, then @%s/eval.bin to /v1/eval\n",
		dir, dir, dir)
	return nil
}
