// Command poseidond serves multi-tenant CKKS evaluation over HTTP — the
// FHE-as-a-service front end to this repository's evaluator. Tenants
// upload evaluation keys to /v1/keys, post binary evaluation envelopes to
// /v1/eval, and scrape scheduler/arena/latency gauges from the telemetry
// endpoint. Compatible requests are batched through one evaluator pass
// with hoisted-rotation sharing; admission control sheds load when arena
// bytes or the request p99 cross their ceilings.
//
// Quickstart:
//
//	poseidond -demo demo/ &          # writes demo/keys.bin + demo/eval.bin
//	curl --data-binary @demo/keys.bin http://127.0.0.1:8080/v1/keys
//	curl --data-binary @demo/eval.bin http://127.0.0.1:8080/v1/eval -o result.bin
//	curl http://127.0.0.1:8080/v1/health
//	curl http://127.0.0.1:9090/metrics
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"poseidon/internal/ckks"
	"poseidon/internal/server"
	"poseidon/internal/telemetry"
	"poseidon/internal/tracing"
)

// daemonConfig collects the tunables main parses from flags, so tests can
// start the same daemon in-process on ephemeral ports.
type daemonConfig struct {
	addr        string
	metricsAddr string
	logN        int
	workers     int
	maxBatch    int
	flush       time.Duration
	queueDepth  int
	registryCap int
	maxArenaMB  int64
	maxP99      time.Duration
	guardSeed   int64
	opAttempts  int
	jobAttempts int
	deadline    time.Duration
	drain       time.Duration
	trace       bool
	traceRing   int
	traceSample int
}

// daemon is a running poseidond: the eval server, its HTTP front end, and
// the optional metrics listener, wired for ordered shutdown.
type daemon struct {
	params *ckks.Parameters
	srv    *server.EvalServer
	api    *http.Server
	ln     net.Listener
	ms     *telemetry.Server
	drain  time.Duration
}

// startDaemon builds the parameter set and eval server, binds the
// listeners, and starts serving. It returns once the API listener accepts
// connections.
func startDaemon(cfg daemonConfig) (*daemon, error) {
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN:     cfg.logN,
		LogQ:     []int{50, 40, 40, 40},
		LogP:     []int{51, 51},
		LogScale: 40,
		Workers:  cfg.workers,
	})
	if err != nil {
		return nil, fmt.Errorf("parameters: %w", err)
	}

	col := telemetry.NewCollector("poseidond")
	var tracer *tracing.Tracer
	if cfg.trace {
		tracer = &tracing.Tracer{
			Recorder: tracing.NewFlightRecorder(cfg.traceRing, cfg.traceSample, 0.95),
		}
	}
	srv, err := server.NewEvalServer(server.Config{
		Params:          params,
		MaxBatch:        cfg.maxBatch,
		FlushTimeout:    cfg.flush,
		QueueDepth:      cfg.queueDepth,
		RegistryCap:     cfg.registryCap,
		MaxArenaBytes:   cfg.maxArenaMB << 20,
		MaxP99:          cfg.maxP99,
		GuardSeed:       cfg.guardSeed,
		OpMaxAttempts:   cfg.opAttempts,
		MaxJobAttempts:  cfg.jobAttempts,
		DefaultDeadline: cfg.deadline,
		Collector:       col,
		Tracer:          tracer,
		DegradeCooldown: 2 * time.Second,
	})
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}

	d := &daemon{params: params, srv: srv, drain: cfg.drain}
	if cfg.metricsAddr != "" {
		var routes []telemetry.Route
		if tracer != nil {
			routes = append(routes, telemetry.Route{
				Pattern: "/debug/requests", Handler: tracer.Recorder.Handler(),
			})
		}
		d.ms, err = telemetry.StartServer(cfg.metricsAddr, col, routes...)
		if err != nil {
			srv.Close()
			return nil, fmt.Errorf("metrics: %w", err)
		}
	}

	d.ln, err = net.Listen("tcp", cfg.addr)
	if err != nil {
		srv.Close()
		if d.ms != nil {
			d.ms.Shutdown(context.Background())
		}
		return nil, fmt.Errorf("listen: %w", err)
	}
	d.api = &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := d.api.Serve(d.ln); err != nil && err != http.ErrServerClosed {
			log.Printf("serve: %v", err)
		}
	}()
	return d, nil
}

// Addr returns the API listener's address (useful with ":0").
func (d *daemon) Addr() string { return d.ln.Addr().String() }

// Shutdown drains the daemon in dependency order, each stage bounded by
// the drain budget: stop accepting and finish in-flight HTTP requests,
// drain the scheduler's queued jobs, then stop the metrics listener.
// In-flight evaluations complete and deliver their responses — the soak
// clients see results, not connection resets.
func (d *daemon) Shutdown() error {
	ctx, cancel := context.WithTimeout(context.Background(), d.drain)
	defer cancel()
	var firstErr error
	if err := d.api.Shutdown(ctx); err != nil {
		firstErr = fmt.Errorf("api shutdown: %w", err)
	}
	if err := d.srv.Shutdown(ctx); err != nil && firstErr == nil {
		firstErr = fmt.Errorf("scheduler drain: %w", err)
	}
	if d.ms != nil {
		if err := d.ms.Shutdown(ctx); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("metrics shutdown: %w", err)
		}
	}
	return firstErr
}

func main() {
	var cfg daemonConfig
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:8080", "evaluation API listen address")
	flag.StringVar(&cfg.metricsAddr, "metrics", "127.0.0.1:9090", "telemetry listen address ('' disables)")
	flag.IntVar(&cfg.logN, "logn", 11, "ring degree log2")
	flag.IntVar(&cfg.workers, "workers", 0, "evaluator worker goroutines (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.maxBatch, "max-batch", 16, "max requests fused into one batch")
	flag.DurationVar(&cfg.flush, "flush", 2*time.Millisecond, "max wait for a batch to fill")
	flag.IntVar(&cfg.queueDepth, "queue", 256, "dispatch queue depth")
	flag.IntVar(&cfg.registryCap, "registry-cap", 64, "resident tenant key sets")
	flag.Int64Var(&cfg.maxArenaMB, "max-arena-mb", 0, "arena-bytes admission ceiling in MiB (0 = off)")
	flag.DurationVar(&cfg.maxP99, "max-p99", 0, "request-p99 admission ceiling (0 = off)")
	flag.Int64Var(&cfg.guardSeed, "guard-seed", 1, "integrity guard seed (0 disables guards)")
	flag.IntVar(&cfg.opAttempts, "op-attempts", 1, "op-level recovery attempts per integrity failure (1 = off)")
	flag.IntVar(&cfg.jobAttempts, "job-attempts", 1, "scheduler attempts per integrity-failed job (1 = off)")
	flag.DurationVar(&cfg.deadline, "deadline", 0, "default per-request deadline (0 = unbounded)")
	flag.DurationVar(&cfg.drain, "drain", 10*time.Second, "shutdown drain budget")
	flag.BoolVar(&cfg.trace, "trace", false, "enable request tracing: span trees on /debug/requests (telemetry mux), trace exemplars on /metrics")
	flag.IntVar(&cfg.traceRing, "trace-ring", 1024, "flight-recorder capacity (retained request traces)")
	flag.IntVar(&cfg.traceSample, "trace-sample", 16, "keep 1/N of ordinary requests (errored and slowest are always kept)")
	demoDir := flag.String("demo", "", "write curl-able demo request files to this directory")
	flag.Parse()

	d, err := startDaemon(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if *demoDir != "" {
		if err := writeDemo(*demoDir, d.params); err != nil {
			log.Fatalf("demo: %v", err)
		}
	}
	if d.ms != nil {
		log.Printf("telemetry on http://%s/metrics", d.ms.Addr())
		if cfg.trace {
			log.Printf("request traces on http://%s/debug/requests", d.ms.Addr())
		}
	}
	log.Printf("poseidond serving LogN=%d on http://%s (batch ≤%d, flush %v, registry cap %d)",
		cfg.logN, d.Addr(), cfg.maxBatch, cfg.flush, cfg.registryCap)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Print("shutting down")
	if err := d.Shutdown(); err != nil {
		log.Printf("shutdown: %v", err)
	}
	log.Print("drained")
}

// writeDemo generates a throwaway tenant ("demo") and writes ready-to-curl
// binary envelopes: keys.bin registers the tenant's evaluation keys,
// eval.bin rotates an encrypted 1..8 ramp by one slot. The secret key
// stays in demo/sk.bin so a later session can decrypt the response.
func writeDemo(dir string, params *ckks.Parameters) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	kgen := ckks.NewKeyGenerator(params, time.Now().UnixNano())
	sk := kgen.GenSecretKey()
	pk := kgen.GenPublicKey(sk)
	rlk := kgen.GenRelinearizationKey(sk)
	rtk := kgen.GenRotationKeys(sk, []int{1, 2, 4}, true)

	rlkBytes, err := rlk.MarshalBinary()
	if err != nil {
		return err
	}
	rtkBytes, err := rtk.MarshalBinary()
	if err != nil {
		return err
	}
	keys := server.EncodeKeyUpload(&server.KeyUpload{Tenant: "demo", Relin: rlkBytes, Rotations: rtkBytes})
	if err := os.WriteFile(filepath.Join(dir, "keys.bin"), keys, 0o644); err != nil {
		return err
	}

	enc := ckks.NewEncoder(params)
	encr := ckks.NewEncryptor(params, pk, time.Now().UnixNano()+1)
	z := make([]complex128, params.Slots)
	for i := range z {
		z[i] = complex(float64(i%8+1), 0)
	}
	ctBytes, err := encr.Encrypt(enc.Encode(z, params.MaxLevel(), params.Scale)).MarshalBinary()
	if err != nil {
		return err
	}
	eval := server.EncodeEvalRequest(&server.EvalRequest{Tenant: "demo", Op: server.OpRotate, Steps: 1, Ct: ctBytes})
	if err := os.WriteFile(filepath.Join(dir, "eval.bin"), eval, 0o644); err != nil {
		return err
	}
	skBytes, err := sk.MarshalBinary()
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "sk.bin"), skBytes, 0o600); err != nil {
		return err
	}
	fmt.Printf("demo files in %s: curl --data-binary @%s/keys.bin http://<addr>/v1/keys, then @%s/eval.bin to /v1/eval\n",
		dir, dir, dir)
	return nil
}
