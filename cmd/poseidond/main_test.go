package main

import (
	"os"
	"testing"

	"poseidon/internal/ckks"
	"poseidon/internal/server"
)

// The demo files must be valid envelopes a curl user can post verbatim:
// keys.bin decodes as a key upload carrying both keys, eval.bin as a
// rotation request whose ciphertext deserializes at the demo parameters.
func TestWriteDemoProducesValidEnvelopes(t *testing.T) {
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN:     8,
		LogQ:     []int{50, 40, 40, 40},
		LogP:     []int{51, 51},
		LogScale: 40,
		Workers:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := writeDemo(dir, params); err != nil {
		t.Fatal(err)
	}

	keysBytes := readFile(t, dir+"/keys.bin")
	u, err := server.DecodeKeyUpload(keysBytes)
	if err != nil {
		t.Fatalf("keys.bin: %v", err)
	}
	if u.Tenant != "demo" || len(u.Relin) == 0 || len(u.Rotations) == 0 {
		t.Fatalf("keys.bin incomplete: tenant %q relin %d rot %d", u.Tenant, len(u.Relin), len(u.Rotations))
	}
	rtk := new(ckks.RotationKeySet)
	if err := rtk.UnmarshalBinary(u.Rotations); err != nil {
		t.Fatalf("rotation keys: %v", err)
	}

	evalBytes := readFile(t, dir+"/eval.bin")
	req, err := server.DecodeEvalRequest(evalBytes)
	if err != nil {
		t.Fatalf("eval.bin: %v", err)
	}
	if req.Tenant != "demo" || req.Op != server.OpRotate || req.Steps != 1 {
		t.Fatalf("eval.bin wrong request: %+v", req)
	}
	ct := new(ckks.Ciphertext)
	if err := ct.UnmarshalBinary(req.Ct); err != nil {
		t.Fatalf("demo ciphertext: %v", err)
	}

	sk := new(ckks.SecretKey)
	if err := sk.UnmarshalBinary(readFile(t, dir+"/sk.bin")); err != nil {
		t.Fatalf("sk.bin: %v", err)
	}
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
