package main

import (
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"poseidon/internal/ckks"
	"poseidon/internal/server"
)

// TestShutdownDrainsInFlight starts the daemon on ephemeral ports, puts a
// burst of evaluation requests in flight, and shuts down while they run:
// every request must complete with a decryptable result — graceful drain
// means responses, not connection resets.
func TestShutdownDrainsInFlight(t *testing.T) {
	d, err := startDaemon(daemonConfig{
		addr:        "127.0.0.1:0",
		metricsAddr: "", // no telemetry listener in tests
		logN:        8,
		maxBatch:    4,
		flush:       time.Millisecond,
		queueDepth:  64,
		registryCap: 4,
		guardSeed:   1,
		drain:       10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	kgen := ckks.NewKeyGenerator(d.params, 42)
	sk := kgen.GenSecretKey()
	pk := kgen.GenPublicKey(sk)
	rtk := kgen.GenRotationKeys(sk, []int{1}, false)
	cl := &server.Client{Base: "http://" + d.Addr()}
	if err := cl.UploadKeys("tenant", nil, rtk); err != nil {
		t.Fatal(err)
	}

	enc := ckks.NewEncoder(d.params)
	encr := ckks.NewEncryptor(d.params, pk, 43)
	dec := ckks.NewDecryptor(d.params, sk)
	want := make([]complex128, d.params.Slots)
	for i := range want {
		want[i] = complex(float64(i%7+1), 0)
	}
	ctBytes, err := encr.Encrypt(enc.Encode(want, d.params.MaxLevel(), d.params.Scale)).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	const inflight = 12
	errs := make([]error, inflight)
	var wg sync.WaitGroup
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ct, _, err := cl.Eval(&server.EvalRequest{Tenant: "tenant", Op: server.OpRotate, Steps: 1, Ct: ctBytes})
			if err != nil {
				errs[i] = err
				return
			}
			got := enc.Decode(dec.Decrypt(ct))
			for s := range want {
				exp := want[(s+1)%len(want)]
				if diff := real(got[s]) - real(exp); diff > 0.5 || diff < -0.5 {
					errs[i] = fmt.Errorf("slot %d: got %v want %v", s, got[s], exp)
					return
				}
			}
		}(i)
	}
	// Let the burst reach the server before draining; Shutdown must then
	// wait for every admitted request rather than cutting them off.
	time.Sleep(20 * time.Millisecond)
	if err := d.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("request %d: %v", i, err)
		}
	}
}

// The demo files must be valid envelopes a curl user can post verbatim:
// keys.bin decodes as a key upload carrying both keys, eval.bin as a
// rotation request whose ciphertext deserializes at the demo parameters.
func TestWriteDemoProducesValidEnvelopes(t *testing.T) {
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN:     8,
		LogQ:     []int{50, 40, 40, 40},
		LogP:     []int{51, 51},
		LogScale: 40,
		Workers:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := writeDemo(dir, params); err != nil {
		t.Fatal(err)
	}

	keysBytes := readFile(t, dir+"/keys.bin")
	u, err := server.DecodeKeyUpload(keysBytes)
	if err != nil {
		t.Fatalf("keys.bin: %v", err)
	}
	if u.Tenant != "demo" || len(u.Relin) == 0 || len(u.Rotations) == 0 {
		t.Fatalf("keys.bin incomplete: tenant %q relin %d rot %d", u.Tenant, len(u.Relin), len(u.Rotations))
	}
	rtk := new(ckks.RotationKeySet)
	if err := rtk.UnmarshalBinary(u.Rotations); err != nil {
		t.Fatalf("rotation keys: %v", err)
	}

	evalBytes := readFile(t, dir+"/eval.bin")
	req, err := server.DecodeEvalRequest(evalBytes)
	if err != nil {
		t.Fatalf("eval.bin: %v", err)
	}
	if req.Tenant != "demo" || req.Op != server.OpRotate || req.Steps != 1 {
		t.Fatalf("eval.bin wrong request: %+v", req)
	}
	ct := new(ckks.Ciphertext)
	if err := ct.UnmarshalBinary(req.Ct); err != nil {
		t.Fatalf("demo ciphertext: %v", err)
	}

	sk := new(ckks.SecretKey)
	if err := sk.UnmarshalBinary(readFile(t, dir+"/sk.bin")); err != nil {
		t.Fatalf("sk.bin: %v", err)
	}
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
