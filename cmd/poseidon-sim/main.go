// Command poseidon-sim runs an operation trace on a configurable Poseidon
// design point: load a JSON trace (or one of the built-in benchmarks),
// choose lanes / fusion degree / automorphism core / bandwidth, and get the
// full timing, bandwidth, operator and energy report.
//
// Examples:
//
//	poseidon-sim -benchmark LR
//	poseidon-sim -benchmark ResNet-20 -lanes 256 -auto naive
//	poseidon-sim -trace mytrace.json -hbm 230 -k 2
//	poseidon-sim -benchmark LSTM -dump lstm.json   # export the trace
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"poseidon/internal/arch"
	"poseidon/internal/report"
	"poseidon/internal/trace"
	"poseidon/internal/workloads"
)

func main() {
	var (
		benchmark = flag.String("benchmark", "", "built-in workload: LR, LSTM, ResNet-20, PackedBootstrapping")
		traceFile = flag.String("trace", "", "JSON trace file to simulate")
		dump      = flag.String("dump", "", "write the selected trace as JSON and exit")
		lanes     = flag.Int("lanes", 512, "vector lanes")
		fusionK   = flag.Int("k", 3, "NTT fusion degree")
		freq      = flag.Float64("freq", 300, "clock, MHz")
		hbm       = flag.Float64("hbm", 460, "peak HBM bandwidth, GB/s")
		auto      = flag.String("auto", "hfauto", "automorphism core: hfauto or naive")
		logN      = flag.Int("logn", 16, "ring degree log2")
		limbs     = flag.Int("limbs", 45, "top-level RNS limbs")
		alpha     = flag.Int("alpha", 4, "special primes (keyswitch digit width)")
	)
	flag.Parse()

	tr, err := selectTrace(*benchmark, *traceFile, *logN, *limbs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *dump != "" {
		f, err := os.Create(*dump)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := tr.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d ops)\n", *dump, len(tr.Ops))
		return
	}

	cfg := arch.U280()
	cfg.Lanes = *lanes
	cfg.FusionK = *fusionK
	cfg.FreqMHz = *freq
	cfg.HBMGBs = *hbm
	switch *auto {
	case "hfauto":
		cfg.Auto = arch.HFAutoCore
	case "naive":
		cfg.Auto = arch.NaiveAutoCore
	default:
		fmt.Fprintf(os.Stderr, "unknown -auto %q\n", *auto)
		os.Exit(2)
	}
	model, err := arch.NewModel(cfg, arch.FHEParams{LogN: *logN, Limbs: *limbs, Alpha: *alpha})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	em := arch.DefaultEnergy()
	rep := arch.Simulate(model, em, tr)

	head := report.New(fmt.Sprintf("%s on %d lanes, k=%d, %s, %.0f GB/s",
		tr.Name, cfg.Lanes, cfg.FusionK, cfg.Auto, cfg.HBMGBs),
		"metric", "value")
	head.AddRow("total time (ms)", rep.TotalTime*1e3)
	if rep.Workers > 0 {
		head.AddRow("capture workers", float64(rep.Workers))
	}
	head.AddRow("HBM traffic (GB)", rep.TotalBytes/1e9)
	head.AddRow("avg bandwidth utilization (%)", rep.AvgBandwidthUtil*100)
	head.AddRow("energy (J)", rep.TotalEnergy)
	head.AddRow("EDP (J·s)", rep.EDP)
	head.Write(os.Stdout)

	byKind := report.New("time by basic operation", "operation", "count", "time (ms)", "share (%)", "min bw util (%)")
	for _, st := range rep.KindsByTime() {
		byKind.AddRow(st.Kind.String(), st.Count, st.Time*1e3,
			st.Time/rep.TotalTime*100, st.MinUtil*100)
	}
	byKind.Write(os.Stdout)

	byOp := report.New("time attributed to operator cores", "core", "time (ms)", "share (%)")
	for _, op := range []arch.Operator{arch.MA, arch.MM, arch.NTT, arch.Auto, arch.Mem} {
		byOp.AddRow(op.String(), rep.ByOperator[op]*1e3, rep.ByOperator[op]/rep.TotalTime*100)
	}
	byOp.Write(os.Stdout)

	if len(rep.ByTag) > 1 {
		byTag := report.New("time by workload phase", "phase", "time (ms)", "share (%)")
		for _, tag := range sortedTags(rep.ByTag) {
			byTag.AddRow(tag, rep.ByTag[tag]*1e3, rep.ByTag[tag]/rep.TotalTime*100)
		}
		byTag.Write(os.Stdout)
	}
}

func sortedTags(m map[string]float64) []string {
	tags := make([]string, 0, len(m))
	for tag := range m {
		tags = append(tags, tag)
	}
	sort.Slice(tags, func(i, j int) bool { return m[tags[i]] > m[tags[j]] })
	return tags
}

func selectTrace(benchmark, traceFile string, logN, limbs int) (*trace.Trace, error) {
	if benchmark != "" && traceFile != "" {
		return nil, fmt.Errorf("choose either -benchmark or -trace, not both")
	}
	if traceFile != "" {
		f, err := os.Open(traceFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return trace.ReadJSON(f)
	}
	spec := workloads.Spec{LogN: logN, MaxLimbs: limbs, Slots: 1 << uint(logN-1)}
	for _, tr := range workloads.All(spec) {
		if tr.Name == benchmark {
			return tr, nil
		}
	}
	return nil, fmt.Errorf("unknown benchmark %q (LR, LSTM, ResNet-20, PackedBootstrapping)", benchmark)
}
