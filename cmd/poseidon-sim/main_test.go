package main

import (
	"os"
	"path/filepath"
	"testing"

	"poseidon/internal/trace"
)

func TestSelectTraceBuiltins(t *testing.T) {
	for _, name := range []string{"LR", "LSTM", "ResNet-20", "PackedBootstrapping"} {
		tr, err := selectTrace(name, "", 16, 45)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tr.Name != name || len(tr.Ops) == 0 {
			t.Errorf("%s: bad trace", name)
		}
	}
	if _, err := selectTrace("nope", "", 16, 45); err == nil {
		t.Error("unknown benchmark should error")
	}
	if _, err := selectTrace("LR", "x.json", 16, 45); err == nil {
		t.Error("both selectors should error")
	}
}

func TestSelectTraceFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.json")

	src := &trace.Trace{Name: "custom"}
	src.Add(trace.HAdd, 10, 5)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	tr, err := selectTrace("", path, 16, 45)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "custom" || tr.TotalOps() != 5 {
		t.Errorf("file trace wrong: %+v", tr)
	}

	if _, err := selectTrace("", filepath.Join(dir, "missing.json"), 16, 45); err == nil {
		t.Error("missing file should error")
	}
}

func TestSortedTags(t *testing.T) {
	tags := sortedTags(map[string]float64{"a": 1, "b": 3, "c": 2})
	if len(tags) != 3 || tags[0] != "b" || tags[1] != "c" || tags[2] != "a" {
		t.Errorf("sortedTags wrong order: %v", tags)
	}
}
