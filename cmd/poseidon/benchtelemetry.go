package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"poseidon"
	"poseidon/internal/arch"
	"poseidon/internal/ckks"
	"poseidon/internal/telemetry"
)

func init() {
	register("benchtelemetry", "telemetry overhead gates (disabled: 0 allocs/op, enabled: ≤2% on the op chain) and model-vs-measured calibration, emitted as JSON", runBenchTelemetry)
}

// telemetryOverhead is the paired chain measurement the gate inspects.
type telemetryOverhead struct {
	DisabledNsPerOp float64 `json:"disabled_ns_per_op"`
	EnabledNsPerOp  float64 `json:"enabled_ns_per_op"`
	OverheadPct     float64 `json:"overhead_pct"`
	Trials          int     `json:"trials"` // enabled/disabled timing pairs; the median-ratio pair is reported
}

// telemetryReport is the BENCH_telemetry.json schema.
type telemetryReport struct {
	GeneratedBy string `json:"generated_by"`
	LogN        int    `json:"log_n"`
	QLimbs      int    `json:"q_limbs"`
	Workers     int    `json:"workers"`
	GOMAXPROCS  int    `json:"gomaxprocs"`

	// DisabledChainAllocs is testing.AllocsPerRun over the into-op chain
	// with no observer installed — the zero-allocation contract.
	DisabledChainAllocs float64           `json:"disabled_chain_allocs"`
	Overhead            telemetryOverhead `json:"overhead"`

	// Report is the accelerator pricing of the telemetry workload's recorded
	// trace, carrying the measured-vs-modeled calibration in Report.Calib.
	Report arch.Report `json:"report"`
}

// runBenchTelemetry measures what the telemetry layer costs and what it
// says: (1) with no observer the instrumented chain must stay at exactly
// zero heap allocations per op; (2) with a collector installed the same
// chain must slow down by at most the gate percentage; (3) a recorded
// workload covering every evaluator basic-op kind is priced on the paper's
// design point and joined with the measured histograms into per-kind
// measured/modeled calibration ratios.
func runBenchTelemetry(fs *flag.FlagSet, args []string) error {
	logN := fs.Int("logn", 12, "ring degree log2")
	out := fs.String("o", "BENCH_telemetry.json", "output path ('-' for stdout)")
	gate := fs.Bool("gate", false, "fail unless disabled allocs are 0 and enabled overhead is within the limit")
	maxPct := fs.Float64("maxpct", 2.0, "enabled-telemetry chain overhead limit, percent")
	if err := fs.Parse(args); err != nil {
		return err
	}

	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN:     *logN,
		LogQ:     []int{55, 45, 45, 45, 45, 45},
		LogP:     []int{58, 58},
		LogScale: 45,
		Workers:  1,
	})
	if err != nil {
		return err
	}
	kgen := ckks.NewKeyGenerator(params, 42)
	sk := kgen.GenSecretKey()
	rlk := kgen.GenRelinearizationKey(sk)
	rtk := kgen.GenRotationKeys(sk, []int{1}, true)
	pk := kgen.GenPublicKey(sk)
	encr := ckks.NewEncryptor(params, pk, 7)
	enc := ckks.NewEncoder(params)
	z := make([]complex128, params.Slots)
	for i := range z {
		z[i] = complex(float64(i%17)/17, float64(i%5)/5)
	}
	level := params.MaxLevel()
	ct1 := encr.Encrypt(enc.Encode(z, level, params.Scale))
	ct2 := encr.Encrypt(enc.Encode(z, level, params.Scale))
	pt := enc.Encode(z, level, params.Scale)
	ev := ckks.NewEvaluator(params, rlk, rtk)

	// The gated chain mirrors benchalloc's into-mode chain: multiply-
	// relinearize, rescale, rotate, accumulate into fixed destinations.
	prod := ckks.NewCiphertext(params, level)
	dropped := ckks.NewCiphertext(params, level-1)
	rot := ckks.NewCiphertext(params, level-1)
	acc := ckks.NewCiphertext(params, level-1)
	chain := func() {
		ev.MulRelinInto(prod, ct1, ct2)
		ev.RescaleInto(dropped, prod)
		ev.RotateInto(rot, dropped, 1)
		ev.AddInto(acc, dropped, rot)
	}

	rep := telemetryReport{
		GeneratedBy: "poseidon benchtelemetry",
		LogN:        *logN,
		QLimbs:      level + 1,
		Workers:     1,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}

	// (1) Disabled path: no observer, zero allocations.
	chain() // warm-up: arena free lists, permutation tables
	rep.DisabledChainAllocs = testing.AllocsPerRun(20, chain)

	// (2) Enabled path: the FHE chain is milliseconds while a telemetry
	// record is ~100ns, so the honest overhead sits far below the gate —
	// what surfaces instead is machine drift. Each trial times the two
	// sides back to back (enabled, then disabled) so drift cancels inside
	// the pair, and the reported figure is the median-ratio pair: a single
	// loaded window corrupts one pair's ratio, not the measurement.
	// Interleaved min-of-N was not enough — one slow second on either
	// side's minimum still swung the overhead by tens of points.
	const trials = 7
	timeChain := func(iters int) float64 {
		start := time.Now()
		for i := 0; i < iters; i++ {
			chain()
		}
		return float64(time.Since(start).Nanoseconds()) / float64(iters)
	}
	collector := telemetry.NewCollector("benchtelemetry")
	ev.SetObserver(collector)
	chain() // materialize the chain's histograms before timing
	ev.SetObserver(nil)
	rep.Overhead.Trials = trials
	iters := int(300e6/timeChain(3)) + 1 // ~0.3s per side per trial
	pairs := make([][2]float64, trials)
	for t := range pairs {
		ev.SetObserver(collector)
		e := timeChain(iters)
		ev.SetObserver(nil)
		pairs[t] = [2]float64{e, timeChain(iters)}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i][0]/pairs[i][1] < pairs[j][0]/pairs[j][1] })
	med := pairs[trials/2]
	rep.Overhead.EnabledNsPerOp, rep.Overhead.DisabledNsPerOp = med[0], med[1]
	rep.Overhead.OverheadPct = 100 * (rep.Overhead.EnabledNsPerOp - rep.Overhead.DisabledNsPerOp) / rep.Overhead.DisabledNsPerOp

	// (3) Calibration workload: every basic-op kind the evaluator observes,
	// recorded (for accelerator pricing) and measured (for the histograms)
	// through the same fanout.
	calCollector := telemetry.NewCollector("calibration")
	recorder := poseidon.NewTraceRecorder("calibration")
	recorder.SetWorkers(1)
	ev.SetObserver(ckks.Fanout(recorder, calCollector))
	dst := ckks.NewCiphertext(params, level)
	for i := 0; i < 25; i++ {
		ev.AddInto(dst, ct1, ct2)                        // HAdd
		ev.AddPlainInto(dst, ct1, pt)                    // HAddPlain
		ev.MulPlainInto(prod, ct1, pt)                   // PMult
		ev.MulRelinInto(prod, ct1, ct2)                  // CMult
		ev.RescaleInto(dropped, prod)                    // Rescale
		ev.RotateInto(rot, dropped, 1)                   // Rotation
		ev.KeySwitchInto(dst, ct1, &rlk.SwitchingKey)    // Keyswitch
	}
	ev.SetObserver(nil)

	model, err := arch.NewModel(arch.U280(), arch.PaperParams())
	if err != nil {
		return err
	}
	rep.Report = arch.Simulate(model, arch.DefaultEnergy(), recorder.Trace())
	rep.Report.Calib = telemetry.Calibrate(calCollector.Snapshot(), model)

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if *out == "-" {
		if _, err := os.Stdout.Write(blob); err != nil {
			return err
		}
	} else {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
	fmt.Fprintf(os.Stderr, "  disabled chain: %.0f allocs/op, %.0f ns/op\n",
		rep.DisabledChainAllocs, rep.Overhead.DisabledNsPerOp)
	fmt.Fprintf(os.Stderr, "  enabled chain:  %.0f ns/op (%+.2f%%)\n",
		rep.Overhead.EnabledNsPerOp, rep.Overhead.OverheadPct)
	for _, kc := range rep.Report.Calib.PerKind {
		fmt.Fprintf(os.Stderr, "  calib %-10s count %3d  measured %.3gs  modeled %.3gs  ratio %.3g\n",
			kc.Name, kc.Count, kc.MeasuredSec, kc.ModeledSec, kc.Ratio)
	}
	fmt.Fprintf(os.Stderr, "  calib drift: geomean %.3g, min %.3g, max %.3g\n",
		rep.Report.Calib.GeomeanRatio, rep.Report.Calib.MinRatio, rep.Report.Calib.MaxRatio)

	if *gate {
		if rep.DisabledChainAllocs != 0 {
			return fmt.Errorf("telemetry gate: disabled chain allocates %.0f allocs/op, want 0", rep.DisabledChainAllocs)
		}
		if rep.Overhead.OverheadPct > *maxPct {
			return fmt.Errorf("telemetry gate: enabled chain overhead %.2f%% > %.2f%%", rep.Overhead.OverheadPct, *maxPct)
		}
		fmt.Fprintln(os.Stderr, "  telemetry gate: PASS")
	}
	return nil
}
