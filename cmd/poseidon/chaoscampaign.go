package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"poseidon/internal/ckks"
	"poseidon/internal/fault"
	"poseidon/internal/server"
	"poseidon/internal/telemetry"
	"poseidon/internal/tracing"
)

func init() {
	register("chaoscampaign",
		"multi-tenant serving soak under sustained random fault injection: eventual-success and zero-corruption rates with recovery attribution, emitted as BENCH_chaos.json",
		runChaosCampaign)
}

// chaosPhase is one soak pass over the full tenant population — clean
// (injector silent) or chaos (faults continuously re-armed).
type chaosPhase struct {
	Requests    int     `json:"requests"`
	Succeeded   int     `json:"succeeded"` // answered AND decrypt-validated
	Failed      int     `json:"failed"`    // errored after client+server retry budgets
	Corrupted   int     `json:"corrupted"` // answered with a WRONG plaintext — must be 0
	SuccessRate float64 `json:"success_rate"`
	ElapsedSec  float64 `json:"elapsed_sec"`
	OpsPerSec   float64 `json:"ops_per_sec"`

	// Serving-layer counters for the phase (one EvalServer per phase).
	GuardTrips     uint64 `json:"guard_trips"`
	Rejected       uint64 `json:"rejected"` // 503s the client retried through
	JobRetries     uint64 `json:"job_retries"`
	JobRecovered   uint64 `json:"job_recovered"`
	JobUnrecovered uint64 `json:"job_unrecoverable"`
}

// chaosReport is the BENCH_chaos.json schema.
type chaosReport struct {
	GeneratedBy       string `json:"generated_by"`
	LogN              int    `json:"log_n"`
	QLimbs            int    `json:"q_limbs"`
	Seed              int64  `json:"seed"`
	Tenants           int    `json:"tenants"`
	Keysets           int    `json:"keysets"`
	RequestsPerTenant int    `json:"requests_per_tenant"`

	// Fault pressure applied during the chaos phase.
	ArmWindow         uint64  `json:"arm_window"` // HBM visits a pending fault fires within
	TransientArmings  int     `json:"transient_armings"`
	StickyArmings     int     `json:"sticky_armings"`
	FaultsInjected    uint64  `json:"faults_injected"`
	FaultsHealed      uint64  `json:"faults_healed"`
	HBMVisits         uint64  `json:"hbm_visits"`
	FaultsPerThousand float64 `json:"faults_per_thousand_requests"`

	Clean chaosPhase `json:"clean"`
	Chaos chaosPhase `json:"chaos"`

	// Throughput cost of surviving the fault pressure: clean vs chaos
	// ops/sec on the identical offered load.
	RecoveryOverhead string `json:"recovery_overhead"`

	// Op-level recovery telemetry (ckks re-execution inside the evaluator),
	// as exported to /metrics; job-level retry lives in the phase counters.
	OpRecovery *telemetry.RecoverySnapshot `json:"op_recovery,omitempty"`

	Gate struct {
		Enabled     bool    `json:"enabled"`
		MinSuccess  float64 `json:"min_success"`
		SuccessRate float64 `json:"success_rate"`
		Pass        bool    `json:"pass"`
	} `json:"gate"`
}

// chaosEventLog is the -events JSONL sink: one line per injected fault,
// per transient heal, per server-side retry/recovery episode, and per
// client retry. Server and client lines carry the request's trace ID, so
// the log joins against the flight recorder; injector lines join by
// timestamp and site (the injector fires below the request layer and
// cannot know which request's limb it corrupted until a guard attributes
// it). Writes are mutex-serialized: sinks fire from request goroutines.
type chaosEventLog struct {
	mu sync.Mutex
	f  *os.File
	w  *bufio.Writer
}

func openChaosEventLog(path string) (*chaosEventLog, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &chaosEventLog{f: f, w: bufio.NewWriter(f)}, nil
}

// write marshals one event line. Nil-safe so call sites don't gate on the
// flag; marshal failures are dropped (the log is diagnostic, never load-
// bearing for the campaign result).
func (l *chaosEventLog) write(v any) {
	if l == nil {
		return
	}
	blob, err := json.Marshal(v)
	if err != nil {
		return
	}
	l.mu.Lock()
	l.w.Write(blob)
	l.w.WriteByte('\n')
	l.mu.Unlock()
}

func (l *chaosEventLog) close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// The three line shapes share ts_ns/source and flatten their payloads.
type injectorEvent struct {
	TsNs   int64  `json:"ts_ns"`
	Source string `json:"source"` // "injector"
	fault.Event
}

type serverEvent struct {
	Source        string `json:"source"` // "server"
	tracing.Event        // carries its own ts_ns, kind, trace, layer
}

type clientEvent struct {
	TsNs       int64   `json:"ts_ns"`
	Source     string  `json:"source"` // "client"
	Kind       string  `json:"kind"`   // "retry"
	Trace      string  `json:"trace"`
	Attempt    int     `json:"attempt"`
	BackoffMs  float64 `json:"backoff_ms"`
	RetryAfter bool    `json:"retry_after,omitempty"`
	Err        string  `json:"err,omitempty"`
}

// chaosKeyset is one shared key material several simulated tenants register
// (pointer-shared, read-only), with everything needed to issue and
// decrypt-validate rotation requests against it.
type chaosKeyset struct {
	rlk     *ckks.RelinearizationKey
	rtk     *ckks.RotationKeySet
	ctBytes []byte
	decr    *ckks.Decryptor
	enc     *ckks.Encoder
	z       []complex128
}

// runChaosCampaign soaks the full serving stack — HTTP front end, typed
// client with 503 retry, batching scheduler with job re-enqueue, guarded
// evaluators with op-level re-execution — under sustained randomized HBM
// fault injection, and measures what the layered recovery actually delivers:
// the fraction of requests that eventually succeed, proof that no corrupted
// plaintext ever leaves the server, and the throughput price of surviving.
//
// Faults are armed continuously: whenever the injector has no pending
// fault, a new one is armed to fire within the next -window HBM read-back
// visits. Most are transient (the modeled bit flip decays after 0–2 further
// reads, so op-level or job-level re-execution from sealed inputs clears
// it); a bounded handful are sticky (latched in the request's staged
// operand), which must exhaust every retry rung, answer ErrIntegrity, and
// trip the degradation ladder — proving the unrecoverable path stays honest
// under load. Every successful response is decrypted and checked against
// the expected rotation: the checksum seals taken at ingest make a wrong
// answer structurally impossible, and the campaign verifies exactly that.
func runChaosCampaign(fs *flag.FlagSet, args []string) error {
	logN := fs.Int("logn", 8, "ring degree log2")
	tenants := fs.Int("tenants", 32, "simulated concurrent tenants")
	keysets := fs.Int("keysets", 4, "distinct key materials shared across tenants")
	requests := fs.Int("requests", 60, "requests per tenant per phase")
	window := fs.Uint64("window", 512, "HBM visits a pending fault fires within (smaller = more pressure)")
	sticky := fs.Int("sticky", 4, "sticky (unrecoverable) faults to inject during the soak")
	seed := fs.Int64("seed", 77, "campaign seed (keys, inputs, fault schedule)")
	out := fs.String("o", "BENCH_chaos.json", "output path ('-' for stdout)")
	gate := fs.Bool("gate", false, "fail unless eventual success ≥ -minsuccess with zero corrupted responses and ≥1 recovery on each layer exercised")
	minSuccess := fs.Float64("minsuccess", 0.99, "required eventual-success fraction under chaos")
	events := fs.String("events", "", "JSONL event log: injected/healed faults, server retry/recovery episodes, client retries — joinable by trace ID (empty = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var evlog *chaosEventLog
	if *events != "" {
		l, err := openChaosEventLog(*events)
		if err != nil {
			return err
		}
		evlog = l
		defer evlog.close()
	}
	// The tracer exists only to route the scheduler's job-retry and the
	// evaluator's op-recovery events into the JSONL log with their trace
	// IDs; no flight recorder is attached (the campaign's deliverable is
	// the event stream, not the span trees).
	var tracer *tracing.Tracer
	if evlog != nil {
		tracer = &tracing.Tracer{Events: func(ev tracing.Event) {
			evlog.write(serverEvent{Source: "server", Event: ev})
		}}
	}

	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN:     *logN,
		LogQ:     []int{50, 40, 40, 40},
		LogP:     []int{51, 51},
		LogScale: 40,
		Workers:  1,
	})
	if err != nil {
		return err
	}
	if *keysets > *tenants {
		*keysets = *tenants
	}

	keys := make([]*chaosKeyset, *keysets)
	for i := range keys {
		kgen := ckks.NewKeyGenerator(params, *seed+int64(100+i))
		sk := kgen.GenSecretKey()
		pk := kgen.GenPublicKey(sk)
		enc := ckks.NewEncoder(params)
		encr := ckks.NewEncryptor(params, pk, *seed+int64(200+i))
		rng := rand.New(rand.NewSource(*seed + int64(300+i)))
		z := make([]complex128, params.Slots)
		for j := range z {
			z[j] = complex(2*rng.Float64()-1, 2*rng.Float64()-1)
		}
		ctBytes, err := encr.Encrypt(enc.Encode(z, params.MaxLevel(), params.Scale)).MarshalBinary()
		if err != nil {
			return err
		}
		keys[i] = &chaosKeyset{
			rlk:     kgen.GenRelinearizationKey(sk),
			rtk:     kgen.GenRotationKeys(sk, []int{1}, false),
			ctBytes: ctBytes,
			decr:    ckks.NewDecryptor(params, sk),
			enc:     enc,
			z:       z,
		}
	}

	rep := chaosReport{
		GeneratedBy:       "poseidon chaoscampaign",
		LogN:              *logN,
		QLimbs:            params.MaxLevel() + 1,
		Seed:              *seed,
		Tenants:           *tenants,
		Keysets:           *keysets,
		RequestsPerTenant: *requests,
		ArmWindow:         *window,
	}

	// phase runs the identical offered load against a fresh serving stack:
	// every tenant issues -requests sequential rotations over real HTTP
	// through the retrying client, and every answer is decrypt-validated.
	phase := func(col *telemetry.Collector) (chaosPhase, error) {
		srv, err := server.NewEvalServer(server.Config{
			Params:          params,
			MaxBatch:        8,
			FlushTimeout:    time.Millisecond,
			QueueDepth:      4 * *tenants,
			RegistryCap:     *tenants + 1,
			GuardSeed:       *seed + 1,
			OpMaxAttempts:   3,
			MaxJobAttempts:  3,
			RetryBackoff:    time.Millisecond,
			DegradeCooldown: 75 * time.Millisecond,
			Collector:       col,
			Tracer:          tracer,
		})
		if err != nil {
			return chaosPhase{}, err
		}
		defer srv.Close()
		names := make([]string, *tenants)
		for i := range names {
			names[i] = fmt.Sprintf("chaos-%03d", i)
			ks := keys[i%*keysets]
			if err := srv.Registry().Register(names[i], ks.rlk, ks.rtk); err != nil {
				return chaosPhase{}, err
			}
		}

		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return chaosPhase{}, err
		}
		api := &http.Server{Handler: srv.Handler()}
		go api.Serve(ln)
		defer api.Close()
		base := "http://" + ln.Addr().String()

		var succeeded, failed, corrupted atomic.Int64
		var wg sync.WaitGroup
		start := time.Now()
		for ti := 0; ti < *tenants; ti++ {
			wg.Add(1)
			go func(ti int) {
				defer wg.Done()
				ks := keys[ti%*keysets]
				cl := &server.Client{
					Base: base,
					// Generous 503 budget: degradation-ladder shed windows
					// (75ms cooldown) must be survivable, not fatal.
					Retry: server.RetryPolicy{
						MaxAttempts: 8,
						BaseBackoff: 5 * time.Millisecond,
						MaxBackoff:  60 * time.Millisecond,
					},
				}
				if evlog != nil {
					cl.OnRetry = func(ev server.RetryEvent) {
						ce := clientEvent{
							TsNs: time.Now().UnixNano(), Source: "client", Kind: "retry",
							Trace: ev.Trace, Attempt: ev.Attempt,
							BackoffMs:  float64(ev.Backoff) / float64(time.Millisecond),
							RetryAfter: ev.RetryAfter,
						}
						if ev.Err != nil {
							ce.Err = ev.Err.Error()
						}
						evlog.write(ce)
					}
				}
				req := &server.EvalRequest{
					Tenant: names[ti], Op: server.OpRotate, Steps: 1, Ct: ks.ctBytes,
				}
				for r := 0; r < *requests; r++ {
					ct, _, err := cl.Eval(req)
					if err != nil {
						failed.Add(1)
						continue
					}
					got := ks.enc.Decode(ks.decr.Decrypt(ct))
					n := len(ks.z)
					ok := true
					for j := range got {
						want := ks.z[(j+1)%n]
						if d := got[j] - want; real(d)*real(d)+imag(d)*imag(d) > 1e-4 {
							ok = false
							break
						}
					}
					if ok {
						succeeded.Add(1)
					} else {
						corrupted.Add(1)
					}
				}
			}(ti)
		}
		wg.Wait()
		elapsed := time.Since(start)

		st := srv.Stats()
		total := *tenants * *requests
		ph := chaosPhase{
			Requests:       total,
			Succeeded:      int(succeeded.Load()),
			Failed:         int(failed.Load()),
			Corrupted:      int(corrupted.Load()),
			SuccessRate:    float64(succeeded.Load()) / float64(total),
			ElapsedSec:     elapsed.Seconds(),
			OpsPerSec:      float64(total) / elapsed.Seconds(),
			GuardTrips:     st.GuardTrips,
			Rejected:       st.Rejected,
			JobRetries:     st.JobRetries,
			JobRecovered:   st.JobRecovered,
			JobUnrecovered: st.JobUnrecovered,
		}
		return ph, nil
	}

	// Warm-up pass (unmeasured): the first phase otherwise pays scheduler
	// spin-up, page faults and GC growth, which showed up as a *negative*
	// recovery overhead when the clean baseline ran cold.
	if _, err := phase(telemetry.NewCollector("chaoscampaign-warmup")); err != nil {
		return fmt.Errorf("warm-up phase: %w", err)
	}

	// The injector and its arming driver: whenever no fault is pending, a
	// new one is armed to fire within the next -window HBM visits. A
	// bounded handful of latched faults proves the unrecoverable path;
	// everything else decays within 0–2 re-reads so some episodes resolve
	// inside the evaluator's op retry and some need the scheduler's job
	// re-enqueue.
	inj := fault.NewInjector(*seed + 2)
	if evlog != nil {
		inj.SetEventSink(func(ev fault.Event) {
			evlog.write(injectorEvent{TsNs: time.Now().UnixNano(), Source: "injector", Event: ev})
		})
	}
	var transientArms, stickyArms atomic.Int64
	armRNG := rand.New(rand.NewSource(*seed + 3))
	driveChaos := func(run func() (chaosPhase, error)) (chaosPhase, error) {
		params.RingQ.SetFaultInjector(inj)
		params.RingP.SetFaultInjector(inj)
		defer params.RingQ.SetFaultInjector(nil)
		defer params.RingP.SetFaultInjector(nil)
		stop := make(chan struct{})
		var armWg sync.WaitGroup
		armWg.Add(1)
		go func() {
			defer armWg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if !inj.Pending() {
					if int(stickyArms.Load()) < *sticky && armRNG.Float64() < 0.1 {
						inj.ArmWithin(fault.SiteHBM, fault.BitFlip, *window, fault.Sticky, 0)
						stickyArms.Add(1)
					} else {
						inj.ArmWithin(fault.SiteHBM, fault.BitFlip, *window, fault.Transient, armRNG.Intn(3))
						transientArms.Add(1)
					}
				}
				time.Sleep(200 * time.Microsecond)
			}
		}()
		ph, err := run()
		close(stop)
		armWg.Wait()
		inj.Disarm()
		return ph, err
	}

	// The soak runs clean/chaos pairs back to back: counters aggregate
	// across every pair (the longer the soak, the tighter the success-rate
	// estimate), while the published recovery overhead is the median
	// per-pair throughput ratio — pairing cancels machine drift and the
	// median rejects the pair a GC cycle or scheduler hiccup landed in,
	// exactly as the faultcampaign prices its guard overhead.
	const soakPairs = 3
	accumulate := func(dst *chaosPhase, ph chaosPhase) {
		dst.Requests += ph.Requests
		dst.Succeeded += ph.Succeeded
		dst.Failed += ph.Failed
		dst.Corrupted += ph.Corrupted
		dst.ElapsedSec += ph.ElapsedSec
		dst.GuardTrips += ph.GuardTrips
		dst.Rejected += ph.Rejected
		dst.JobRetries += ph.JobRetries
		dst.JobRecovered += ph.JobRecovered
		dst.JobUnrecovered += ph.JobUnrecovered
	}
	cleanCol := telemetry.NewCollector("chaoscampaign-clean")
	chaosCol := telemetry.NewCollector("chaoscampaign-chaos")
	ratios := make([]float64, 0, soakPairs)
	for pair := 0; pair < soakPairs; pair++ {
		cp, err := phase(cleanCol)
		if err != nil {
			return fmt.Errorf("clean phase %d: %w", pair, err)
		}
		if cp.Failed > 0 || cp.Corrupted > 0 {
			return fmt.Errorf("clean phase %d not clean: %d failed, %d corrupted of %d",
				pair, cp.Failed, cp.Corrupted, cp.Requests)
		}
		hp, err := driveChaos(func() (chaosPhase, error) { return phase(chaosCol) })
		if err != nil {
			return fmt.Errorf("chaos phase %d: %w", pair, err)
		}
		accumulate(&rep.Clean, cp)
		accumulate(&rep.Chaos, hp)
		ratios = append(ratios, cp.OpsPerSec/hp.OpsPerSec)
	}
	rep.Clean.SuccessRate = float64(rep.Clean.Succeeded) / float64(rep.Clean.Requests)
	rep.Clean.OpsPerSec = float64(rep.Clean.Requests) / rep.Clean.ElapsedSec
	rep.Chaos.SuccessRate = float64(rep.Chaos.Succeeded) / float64(rep.Chaos.Requests)
	rep.Chaos.OpsPerSec = float64(rep.Chaos.Requests) / rep.Chaos.ElapsedSec
	sort.Float64s(ratios)
	rep.RecoveryOverhead = fmt.Sprintf("%.1f%%", 100*(ratios[soakPairs/2]-1))

	ist := inj.Stats()
	rep.TransientArmings = int(transientArms.Load())
	rep.StickyArmings = int(stickyArms.Load())
	rep.FaultsInjected = ist.Injected
	rep.FaultsHealed = ist.Healed
	rep.HBMVisits = ist.VisitsAt(fault.SiteHBM)
	rep.FaultsPerThousand = 1000 * float64(ist.Injected) / float64(rep.Chaos.Requests)
	rep.OpRecovery = chaosCol.Snapshot().Recovery

	opRec := uint64(0)
	if rep.OpRecovery != nil {
		opRec = rep.OpRecovery.Recovered
	}
	rep.Gate.Enabled = *gate
	rep.Gate.MinSuccess = *minSuccess
	rep.Gate.SuccessRate = rep.Chaos.SuccessRate
	rep.Gate.Pass = rep.Chaos.Corrupted == 0 &&
		rep.Chaos.SuccessRate >= *minSuccess &&
		rep.FaultsInjected > 0 &&
		opRec+rep.Chaos.JobRecovered > 0

	blob, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if *out == "-" {
		if _, err := os.Stdout.Write(blob); err != nil {
			return err
		}
	} else {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
	if evlog != nil {
		fmt.Fprintf(os.Stderr, "  events: %s\n", *events)
	}
	fmt.Fprintf(os.Stderr,
		"  chaos: %d/%d eventually succeeded (%.2f%%), %d corrupted, %d failed\n",
		rep.Chaos.Succeeded, rep.Chaos.Requests, 100*rep.Chaos.SuccessRate,
		rep.Chaos.Corrupted, rep.Chaos.Failed)
	fmt.Fprintf(os.Stderr,
		"  faults: %d injected (%d sticky armed), %d healed; recovered %d op-level + %d job-level; %d unrecoverable\n",
		rep.FaultsInjected, rep.StickyArmings, rep.FaultsHealed,
		opRec, rep.Chaos.JobRecovered, rep.Chaos.JobUnrecovered)
	fmt.Fprintf(os.Stderr, "  throughput: clean %.1f ops/s, chaos %.1f ops/s (recovery overhead %s)\n",
		rep.Clean.OpsPerSec, rep.Chaos.OpsPerSec, rep.RecoveryOverhead)

	if *gate {
		switch {
		case rep.Chaos.Corrupted > 0:
			return fmt.Errorf("chaos gate: %d corrupted plaintexts reached a client", rep.Chaos.Corrupted)
		case rep.Chaos.SuccessRate < *minSuccess:
			return fmt.Errorf("chaos gate: eventual success %.4f < %.4f", rep.Chaos.SuccessRate, *minSuccess)
		case rep.FaultsInjected == 0:
			return fmt.Errorf("chaos gate: no faults injected — the soak exercised nothing")
		case opRec+rep.Chaos.JobRecovered == 0:
			return fmt.Errorf("chaos gate: faults injected but nothing recovered — retry layers inert")
		}
		fmt.Fprintln(os.Stderr, "  chaos gate: PASS")
	}
	return nil
}
