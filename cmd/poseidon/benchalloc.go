package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"poseidon/internal/ckks"
)

func init() {
	register("benchalloc", "steady-state allocation benchmarks: allocating vs destination-passing API, emitted as JSON", runBenchAlloc)
}

// Pre-arena baseline for the MulRelin+Rescale+Rotate chain at the default
// configuration (LogN=12, 6 Q limbs, workers=1), recorded in EXPERIMENTS.md.
// The -gate flag fails the run unless the destination-passing chain cuts
// both figures by at least half.
const (
	baselineChainAllocs = 208
	baselineChainBytes  = 6077172
)

// allocBench is one measured configuration in BENCH_alloc.json.
type allocBench struct {
	Name        string  `json:"name"` // op or "chain"
	Mode        string  `json:"mode"` // alloc (API returns fresh ciphertexts) or into (pre-created destinations)
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iters       int     `json:"iterations"`
}

// allocArena mirrors the evaluator arena counters after the benchmark runs.
type allocArena struct {
	BytesAllocated uint64 `json:"bytes_allocated"`
	PeakBytes      uint64 `json:"peak_bytes"`
	Gets           uint64 `json:"gets"`
	Misses         uint64 `json:"misses"`
}

// allocReport is the BENCH_alloc.json schema.
type allocReport struct {
	GeneratedBy string            `json:"generated_by"`
	LogN        int               `json:"log_n"`
	N           int               `json:"n"`
	QLimbs      int               `json:"q_limbs"`
	Workers     int               `json:"workers"`
	GOMAXPROCS  int               `json:"gomaxprocs"`
	Baseline    allocBench        `json:"baseline"` // pre-arena chain figures from EXPERIMENTS.md
	Benchmarks  []allocBench      `json:"benchmarks"`
	Reductions  map[string]string `json:"reductions"` // vs the committed baseline / alloc mode
	Arena       allocArena        `json:"arena"`
}

// runBenchAlloc measures steady-state heap behavior of the evaluator: each
// op through the allocating API (fresh result ciphertexts) and through the
// destination-passing API (pre-created containers + arena scratch), plus the
// composed MulRelin+Rescale+Rotate chain the acceptance gate tracks. All
// runs are workers=1 — the configuration the zero-allocation contract covers.
func runBenchAlloc(fs *flag.FlagSet, args []string) error {
	logN := fs.Int("logn", 12, "ring degree log2")
	out := fs.String("o", "BENCH_alloc.json", "output path ('-' for stdout)")
	gate := fs.Bool("gate", false, "fail unless the into-mode chain halves the baseline allocs/op and B/op")
	if err := fs.Parse(args); err != nil {
		return err
	}

	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN:     *logN,
		LogQ:     []int{55, 45, 45, 45, 45, 45},
		LogP:     []int{58, 58},
		LogScale: 45,
		Workers:  1,
	})
	if err != nil {
		return err
	}
	kgen := ckks.NewKeyGenerator(params, 42)
	sk := kgen.GenSecretKey()
	rlk := kgen.GenRelinearizationKey(sk)
	rtk := kgen.GenRotationKeys(sk, []int{1}, true)
	pk := kgen.GenPublicKey(sk)
	encr := ckks.NewEncryptor(params, pk, 7)
	enc := ckks.NewEncoder(params)
	z := make([]complex128, params.Slots)
	for i := range z {
		z[i] = complex(float64(i%17)/17, float64(i%5)/5)
	}
	level := params.MaxLevel()
	ct1 := encr.Encrypt(enc.Encode(z, level, params.Scale))
	ct2 := encr.Encrypt(enc.Encode(z, level, params.Scale))
	pt := enc.Encode(z, level, params.Scale)
	ev := ckks.NewEvaluator(params, rlk, rtk)

	rep := allocReport{
		GeneratedBy: "poseidon benchalloc",
		LogN:        *logN,
		N:           1 << uint(*logN),
		QLimbs:      level + 1,
		Workers:     1,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Baseline: allocBench{
			Name: "chain", Mode: "alloc",
			AllocsPerOp: baselineChainAllocs, BytesPerOp: baselineChainBytes,
		},
		Reductions: map[string]string{},
	}

	add := func(name, mode string, f func()) allocBench {
		f() // warm-up: memoization, arena free lists, permutation tables
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				f()
			}
		})
		ab := allocBench{
			Name: name, Mode: mode,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: int64(r.AllocsPerOp()),
			BytesPerOp:  int64(r.AllocedBytesPerOp()),
			Iters:       r.N,
		}
		rep.Benchmarks = append(rep.Benchmarks, ab)
		return ab
	}

	// Per-op pairs: what the allocating wrapper costs vs the same op into a
	// pre-created destination.
	mulIn := ev.MulPlain(ct1, pt) // fixed input for the rescale pair
	dst := ckks.NewCiphertext(params, level)
	dstLow := ckks.NewCiphertext(params, level-1)
	add("MulRelin", "alloc", func() { ev.MulRelin(ct1, ct2) })
	add("MulRelin", "into", func() { ev.MulRelinInto(dst, ct1, ct2) })
	add("Rescale", "alloc", func() { ev.Rescale(mulIn) })
	add("Rescale", "into", func() { ev.RescaleInto(dstLow, mulIn) })
	add("Rotate", "alloc", func() { ev.Rotate(ct1, 1) })
	add("Rotate", "into", func() { ev.RotateInto(dst, ct1, 1) })

	// The gated chain: multiply-relinearize, rescale, rotate, accumulate.
	chainAlloc := add("chain", "alloc", func() {
		x := ev.Rescale(ev.MulRelin(ct1, ct2))
		ev.Add(x, ev.Rotate(x, 1))
	})
	prod := ckks.NewCiphertext(params, level)
	dropped := ckks.NewCiphertext(params, level-1)
	rot := ckks.NewCiphertext(params, level-1)
	acc := ckks.NewCiphertext(params, level-1)
	chainInto := add("chain", "into", func() {
		ev.MulRelinInto(prod, ct1, ct2)
		ev.RescaleInto(dropped, prod)
		ev.RotateInto(rot, dropped, 1)
		ev.AddInto(acc, dropped, rot)
	})

	reduction := func(before, after int64) string {
		if before == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%.1f%%", 100*(1-float64(after)/float64(before)))
	}
	rep.Reductions["chain_allocs_vs_baseline"] = reduction(baselineChainAllocs, chainInto.AllocsPerOp)
	rep.Reductions["chain_bytes_vs_baseline"] = reduction(baselineChainBytes, chainInto.BytesPerOp)
	rep.Reductions["chain_allocs_vs_alloc_mode"] = reduction(chainAlloc.AllocsPerOp, chainInto.AllocsPerOp)
	rep.Reductions["chain_bytes_vs_alloc_mode"] = reduction(chainAlloc.BytesPerOp, chainInto.BytesPerOp)

	st := params.ArenaStats()
	rep.Arena = allocArena{
		BytesAllocated: st.BytesAllocated,
		PeakBytes:      st.PeakBytes,
		Gets:           st.Gets,
		Misses:         st.Misses,
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if *out == "-" {
		if _, err := os.Stdout.Write(blob); err != nil {
			return err
		}
	} else {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
	fmt.Fprintf(os.Stderr, "  chain alloc mode: %d allocs/op, %d B/op\n", chainAlloc.AllocsPerOp, chainAlloc.BytesPerOp)
	fmt.Fprintf(os.Stderr, "  chain into mode:  %d allocs/op, %d B/op (baseline %d allocs/op, %d B/op)\n",
		chainInto.AllocsPerOp, chainInto.BytesPerOp, int64(baselineChainAllocs), int64(baselineChainBytes))
	fmt.Fprintf(os.Stderr, "  arena: %d bytes allocated, %d peak in use\n", st.BytesAllocated, st.PeakBytes)

	if *gate {
		if chainInto.AllocsPerOp > baselineChainAllocs/2 {
			return fmt.Errorf("alloc gate: chain allocs/op %d > half the baseline %d", chainInto.AllocsPerOp, int64(baselineChainAllocs))
		}
		if chainInto.BytesPerOp > baselineChainBytes/2 {
			return fmt.Errorf("alloc gate: chain B/op %d > half the baseline %d", chainInto.BytesPerOp, int64(baselineChainBytes))
		}
		fmt.Fprintln(os.Stderr, "  alloc gate: PASS")
	}
	return nil
}
