package main

import (
	"flag"
	"fmt"
	"os"

	"poseidon/internal/arch"
	"poseidon/internal/baseline"
	"poseidon/internal/ntt"
	"poseidon/internal/numeric"
	"poseidon/internal/report"
	"poseidon/internal/trace"
	"poseidon/internal/workloads"
)

func stdModel() (*arch.Model, arch.EnergyModel) {
	m, err := arch.NewModel(arch.U280(), arch.PaperParams())
	if err != nil {
		fmt.Fprintf(os.Stderr, "poseidon: building the U280 paper model: %v\n", err)
		os.Exit(1)
	}
	return m, arch.DefaultEnergy()
}

func init() {
	register("table1", "operator reuse matrix: which cores each basic op exercises", runTable1)
	register("table2", "NTT-fusion operation counts per radix-2^k block", runTable2)
	register("table3", "NTT data-access strides per iteration (N=4096, k=3)", runTable3)
	register("table4", "basic-operation throughput: CPU / GPU / HEAX / Poseidon", runTable4)
	register("table5", "benchmark descriptions", runTable5)
	register("table6", "full-system benchmark times vs ASIC/GPU prototypes", runTable6)
	register("table7", "HBM bandwidth utilization per operation per benchmark", runTable7)
	register("table8", "automorphism core resources: naive vs HFAuto", runTable8)
	register("table9", "Poseidon-Auto vs Poseidon-HFAuto benchmark ablation", runTable9)
	register("table10", "energy-delay product per benchmark", runTable10)
	register("table11", "FPGA resources per operator core family", runTable11)
	register("table12", "resource comparison with other FPGA prototypes", runTable12)
	register("fig7", "operator-core time shares inside each basic operation", runFig7)
	register("fig8", "basic-operation time shares per benchmark", runFig8)
	register("fig9", "key-operator time shares per benchmark", runFig9)
	register("fig10", "fusion-degree sweep: resources and NTT time vs k", runFig10)
	register("fig11", "lane-count sweep: time and EDP (ResNet-20)", runFig11)
	register("fig12", "energy breakdown per benchmark", runFig12)
	register("cpu", "measure this machine's single-thread CPU baseline", runCPU)
}

func runTable1(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, _ := stdModel()
	l := m.Params.Limbs
	ops := []struct {
		name string
		prof arch.Profile
	}{
		{"HAdd", m.HAdd(l)},
		{"PMult", m.PMult(l)},
		{"CMult", m.CMult(l)},
		{"Rescale", m.Rescale(l)},
		{"Keyswitch", m.Keyswitch(l)},
		{"Rotation", m.Rotation(l)},
		{"ModUp", m.ModUp(l)},
		{"ModDown", m.ModDown(l)},
	}
	t := report.New("Table I — operator reuse: cores each basic operation exercises",
		"operation", "MA", "MM", "NTT/INTT", "Automorphism", "SBT")
	mark := func(c float64) string {
		if c > 0 {
			return "X"
		}
		return ""
	}
	for _, op := range ops {
		// SBT serves every modular reduction: checked whenever MM or NTT
		// cycles exist (the shared-core design of Fig 2).
		sbt := ""
		if op.prof.Cycles[arch.MM] > 0 || op.prof.Cycles[arch.NTT] > 0 {
			sbt = "X"
		}
		t.AddRow(op.name,
			mark(op.prof.Cycles[arch.MA]),
			mark(op.prof.Cycles[arch.MM]),
			mark(op.prof.Cycles[arch.NTT]),
			mark(op.prof.Cycles[arch.Auto]),
			sbt)
	}
	t.AddNote("derived from the cost model's per-operator cycle attribution")
	t.Write(os.Stdout)
	return nil
}

func runTable2(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		return err
	}
	t := report.New("Table II — conventional NTT vs NTT-fusion, per radix-2^k block",
		"k", "W unfused", "W fused", "Mult/Add unfused", "Mult/Add fused",
		"Red. unfused", "Red. fused", "Red. executed (lazy r2)", "Red. executed (fused plan)")
	for k := 2; k <= 6; k++ {
		u := ntt.UnfusedBlockCosts(k)
		f := ntt.FusedBlockCosts(k)
		// Measure the lazy Harvey radix-2 kernel on a standalone 2^k-point
		// block: its executed reductions (Normalizations) come from the real
		// kernel run, not the analytic formula. The deferred slots account
		// for the remainder of the TAM-convention budget.
		n := 1 << uint(k)
		tab, err := nttTableForBlock(n)
		if err != nil {
			return err
		}
		a := make([]uint64, n)
		for i := range a {
			a[i] = uint64(i + 1)
		}
		var s ntt.Stats
		tab.ForwardWithStats(a, &s)
		if s.Reductions != int64(u.Reductions) || s.Deferred+s.Normalizations != s.Reductions {
			return fmt.Errorf("table2: measured stats inconsistent at k=%d: %+v", k, s)
		}
		// The fused plan at degree k turns the whole 2^k-point block into a
		// single register-resident pass: its measured reduction count is the
		// software realization of the fused TAM column — one executed
		// normalization per output, everything else folded into the pass.
		plan, err := ntt.NewFusedPlan(tab, k)
		if err != nil {
			return err
		}
		for i := range a {
			a[i] = uint64(i + 1)
		}
		var fs ntt.Stats
		plan.ForwardCounted(a, &fs)
		if fs.FusedPasses != 1 || fs.Deferred+fs.Normalizations != fs.Reductions {
			return fmt.Errorf("table2: fused stats inconsistent at k=%d: %+v", k, fs)
		}
		t.AddRow(k, u.Twiddles, f.Twiddles,
			fmt.Sprintf("%d / %d", u.Mults, u.Adds),
			fmt.Sprintf("%d / %d", f.Mults, f.Adds),
			u.Reductions, f.Reductions,
			fmt.Sprintf("%d (+%d deferred)", s.Normalizations, s.Deferred),
			fmt.Sprintf("%d in %d pass", fs.Normalizations, fs.FusedPasses))
	}
	t.AddNote("fused M/A follows 2^k·(2^k−1); the paper prints 4160 at k=6 where the formula gives 4032 (see EXPERIMENTS.md)")
	t.AddNote("lazy r2 column is measured from the software Harvey kernel: one executed band-edge reduction per output, the remaining TAM slots deferred")
	t.AddNote("fused plan column is measured from FusedPlan.ForwardCounted: the register-blocked pass executes exactly the paper's fused reduction budget")
	t.Write(os.Stdout)
	return nil
}

// nttTableForBlock builds a table for a standalone n-point block over a
// small NTT-friendly prime.
func nttTableForBlock(n int) (*ntt.Table, error) {
	qs, err := numeric.GenerateNTTPrimes(30, 10, 1)
	if err != nil {
		return nil, err
	}
	return ntt.NewTable(n, qs[0])
}

func runTable3(fs *flag.FlagSet, args []string) error {
	logN := fs.Int("logn", 12, "ring degree log2")
	k := fs.Int("k", 3, "fusion degree")
	if err := fs.Parse(args); err != nil {
		return err
	}
	t := report.New(fmt.Sprintf("Table III — BRAM access stride per iteration (N=2^%d)", *logN),
		"iteration", "conventional stride", fmt.Sprintf("fused stride (k=%d)", *k))
	conv := ntt.Iterations(*logN, 1)
	fused := ntt.Iterations(*logN, *k)
	for it := 1; it <= fused; it++ {
		t.AddRow(it, ntt.AccessStride(it, 1), ntt.AccessStride(it, *k))
	}
	t.AddNote("conventional NTT needs %d iterations; fusion reduces them to %d", conv, fused)
	t.Write(os.Stdout)
	return nil
}

func runTable4(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, _ := stdModel()
	l := m.Params.Limbs
	model := map[string]arch.Profile{
		"PMult":     m.PMult(l),
		"CMult":     m.CMult(l),
		"NTT":       m.NTTOp(l),
		"Keyswitch": m.Keyswitch(l),
		"Rotation":  m.Rotation(l),
		"Rescale":   m.Rescale(l),
	}
	reported := map[string]map[string]float64{}
	for _, row := range baseline.TableIVReported() {
		if reported[row.Op] == nil {
			reported[row.Op] = map[string]float64{}
		}
		reported[row.Op][row.Platform] = row.OpsPerS
	}
	t := report.New("Table IV — basic-operation throughput (op/s)",
		"operation", "CPU (paper)", "GPU (paper)", "HEAX (paper)",
		"Poseidon (paper)", "Poseidon (this model)", "speedup vs CPU (model)")
	for _, op := range []string{"PMult", "CMult", "NTT", "Keyswitch", "Rotation", "Rescale"} {
		get := func(p string) string {
			if v, ok := reported[op][p]; ok {
				return fmt.Sprintf("%.2f", v)
			}
			return "/"
		}
		ours := 1 / m.Latency(model[op])
		cpu := reported[op]["CPU (Xeon 6234)"]
		t.AddRow(op, get("CPU (Xeon 6234)"), get("over100x (GPU)"), get("HEAX (FPGA)"),
			get("Poseidon (FPGA)"), ours, fmt.Sprintf("%.0f x", ours/cpu))
	}
	t.AddNote("model column: N=2^16, L=44, 512 lanes, k=3, 460 GB/s HBM at 85%% efficiency")
	t.Write(os.Stdout)
	return nil
}

func runTable5(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		return err
	}
	t := report.New("Table V — benchmarks", "benchmark", "description", "basic ops in trace")
	for _, tr := range workloads.All(workloads.PaperSpec()) {
		t.AddRow(tr.Name, tr.Description, fmt.Sprintf("%.0f", tr.TotalOps()))
	}
	t.Write(os.Stdout)
	return nil
}

func runTable6(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, em := stdModel()
	t := report.New("Table VI — full-system benchmark time (ms)",
		"benchmark", "Poseidon (paper)", "Poseidon (this model)", "best ASIC (paper)", "GPU (paper)")
	paper := map[string]float64{}
	bestASIC := map[string]float64{}
	gpu := map[string]float64{}
	for _, row := range baseline.TableVIReported() {
		switch {
		case row.Platform == "Poseidon (FPGA)":
			paper[row.Benchmark] = row.Millis
		case row.Platform == "over100x (GPU)":
			gpu[row.Benchmark] = row.Millis
		default:
			if cur, ok := bestASIC[row.Benchmark]; !ok || row.Millis < cur {
				bestASIC[row.Benchmark] = row.Millis
			}
		}
	}
	for _, tr := range workloads.All(workloads.PaperSpec()) {
		rep := arch.Simulate(m, em, tr)
		g := "/"
		if v, ok := gpu[tr.Name]; ok {
			g = fmt.Sprintf("%.0f", v)
		}
		t.AddRow(tr.Name, paper[tr.Name], rep.TotalTime*1e3, bestASIC[tr.Name], g)
	}
	t.AddNote("ASIC columns are the cited papers' reported results (simulation-phase prototypes)")
	t.Write(os.Stdout)
	return nil
}

func runTable7(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, em := stdModel()
	kinds := []trace.Kind{trace.HAdd, trace.PMult, trace.CMult, trace.Keyswitch, trace.Rotation, trace.Rescale}
	headers := []string{"operation"}
	benches := workloads.All(workloads.PaperSpec())
	for _, tr := range benches {
		headers = append(headers, tr.Name+" (%)")
	}
	t := report.New("Table VII — lowest per-op and average HBM bandwidth utilization", headers...)
	reps := make([]arch.Report, len(benches))
	for i, tr := range benches {
		reps[i] = arch.Simulate(m, em, tr)
	}
	for _, k := range kinds {
		row := []interface{}{k.String()}
		for i := range benches {
			if st, ok := reps[i].ByKind[k]; ok && st.MinUtil <= 1 {
				row = append(row, st.MinUtil*100)
			} else {
				row = append(row, "/")
			}
		}
		t.AddRow(row...)
	}
	avg := []interface{}{"Average"}
	for i := range benches {
		avg = append(avg, reps[i].AvgBandwidthUtil*100)
	}
	t.AddRow(avg...)
	t.Write(os.Stdout)
	return nil
}

func runTable8(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		return err
	}
	t := report.New("Table VIII — automorphism core comparison (one engine, C=512, N=2^16)",
		"design", "FF", "DSP", "LUT", "BRAM", "latency (cycles)")
	for _, kind := range []arch.AutoKind{arch.NaiveAutoCore, arch.HFAutoCore} {
		cfg := arch.U280()
		cfg.Auto = kind
		cr := arch.NewCoreResources(cfg, 16)
		r := cr.AutoCores()
		t.AddRow(kind.String(), r.FF, r.DSP, r.LUT, r.BRAM, cr.AutoLatencyCycles(1<<16))
	}
	t.Write(os.Stdout)
	return nil
}

func runTable9(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfgHF := arch.U280()
	cfgNV := arch.U280()
	cfgNV.Auto = arch.NaiveAutoCore
	mHF, _ := arch.NewModel(cfgHF, arch.PaperParams())
	mNV, _ := arch.NewModel(cfgNV, arch.PaperParams())
	em := arch.DefaultEnergy()
	t := report.New("Table IX — HFAuto ablation: benchmark time (ms)",
		"benchmark", "Poseidon-Auto", "Poseidon-HFAuto", "slowdown")
	for _, tr := range workloads.All(workloads.PaperSpec()) {
		a := arch.Simulate(mNV, em, tr).TotalTime * 1e3
		h := arch.Simulate(mHF, em, tr).TotalTime * 1e3
		t.AddRow(tr.Name, a, h, fmt.Sprintf("%.1f x", a/h))
	}
	t.Write(os.Stdout)
	return nil
}

func runTable10(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, em := stdModel()
	t := report.New("Table X — energy-delay product per benchmark",
		"benchmark", "time (ms)", "energy (J)", "EDP (J·s)")
	for _, tr := range workloads.All(workloads.PaperSpec()) {
		rep := arch.Simulate(m, em, tr)
		t.AddRow(tr.Name, rep.TotalTime*1e3, rep.TotalEnergy, rep.EDP)
	}
	t.AddNote("ASIC comparators' absolute EDP depends on their technology node; see EXPERIMENTS.md")
	t.Write(os.Stdout)
	return nil
}

func runTable11(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		return err
	}
	cr := arch.NewCoreResources(arch.U280(), 16)
	t := report.New("Table XI — FPGA resources per operator core family (512 lanes, k=3)",
		"core family", "LUT", "FF", "DSP", "BRAM")
	rows := []struct {
		name string
		r    arch.Resources
	}{
		{"MA cores", cr.MACores()},
		{"MM cores", cr.MMCores()},
		{"SBT (shared Barrett)", cr.SBTCores()},
		{"NTT cores", cr.NTTCores()},
		{"Automorphism (HFAuto)", cr.AutoCores()},
		{"Total (with memory glue)", cr.Total()},
	}
	for _, row := range rows {
		t.AddRow(row.name, row.r.LUT, row.r.FF, row.r.DSP, row.r.BRAM)
	}
	util := cr.Total().Utilization()
	t.AddNote("U280 utilization: LUT %.0f%%, FF %.0f%%, DSP %.0f%%, BRAM %.0f%%",
		util["LUT"]*100, util["FF"]*100, util["DSP"]*100, util["BRAM"]*100)
	t.Write(os.Stdout)
	return nil
}

func runTable12(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		return err
	}
	cr := arch.NewCoreResources(arch.U280(), 16)
	total := cr.Total()
	t := report.New("Table XII — resource comparison with other FPGA prototypes",
		"prototype", "LUT", "FF", "DSP", "BRAM", "source")
	t.AddRow("Kim et al. [25][26]", 742000, 1181000, 8236, 2120, "reported")
	t.AddRow("HEAX [32]", 1103000, 1601000, 8574, 2371, "reported")
	t.AddRow("Poseidon (this model)", total.LUT, total.FF, total.DSP, total.BRAM, "modeled")
	t.AddNote("comparator rows are the cited papers' published synthesis results")
	t.Write(os.Stdout)
	return nil
}

func runFig7(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, _ := stdModel()
	l := m.Params.Limbs
	ops := []struct {
		name string
		prof arch.Profile
	}{
		{"HAdd", m.HAdd(l)},
		{"PMult", m.PMult(l)},
		{"CMult", m.CMult(l)},
		{"Rescale", m.Rescale(l)},
		{"Keyswitch", m.Keyswitch(l)},
		{"Rotation", m.Rotation(l)},
	}
	t := report.New("Fig 7 — operator-core time share inside each basic operation (%)",
		"operation", "MA", "MM", "NTT", "Automorphism", "data movement")
	for _, op := range ops {
		s := m.Shares(op.prof)
		t.AddRow(op.name, s[arch.MA]*100, s[arch.MM]*100, s[arch.NTT]*100,
			s[arch.Auto]*100, s[arch.Mem]*100)
	}
	t.Write(os.Stdout)
	return nil
}

func runFig8(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, em := stdModel()
	kinds := []trace.Kind{trace.HAdd, trace.HAddPlain, trace.PMult, trace.CMult,
		trace.Rotation, trace.Keyswitch, trace.Rescale}
	headers := []string{"benchmark", "total (ms)"}
	for _, k := range kinds {
		headers = append(headers, k.String()+" (%)")
	}
	t := report.New("Fig 8 — basic-operation time share per benchmark", headers...)
	for _, tr := range workloads.All(workloads.PaperSpec()) {
		rep := arch.Simulate(m, em, tr)
		row := []interface{}{tr.Name, rep.TotalTime * 1e3}
		for _, k := range kinds {
			share := 0.0
			if st, ok := rep.ByKind[k]; ok {
				share = st.Time / rep.TotalTime * 100
			}
			row = append(row, share)
		}
		t.AddRow(row...)
	}
	t.Write(os.Stdout)
	return nil
}

func runFig9(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, em := stdModel()
	t := report.New("Fig 9 — key-operator time share per benchmark (%)",
		"benchmark", "MA", "MM", "NTT", "Automorphism", "data movement")
	for _, tr := range workloads.All(workloads.PaperSpec()) {
		rep := arch.Simulate(m, em, tr)
		total := rep.TotalTime
		t.AddRow(tr.Name,
			rep.ByOperator[arch.MA]/total*100,
			rep.ByOperator[arch.MM]/total*100,
			rep.ByOperator[arch.NTT]/total*100,
			rep.ByOperator[arch.Auto]/total*100,
			rep.ByOperator[arch.Mem]/total*100)
	}
	t.Write(os.Stdout)
	return nil
}

func runFig10(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		return err
	}
	cr := arch.NewCoreResources(arch.U280(), 16)
	t := report.New("Fig 10 — fusion-degree sweep (NTT core array, 512 lanes, N=2^16)",
		"k", "LUT", "FF (Regs)", "DSP", "BRAM", "NTT time (us)")
	for k := 1; k <= 6; k++ {
		r := cr.NTTCoresAtK(k)
		t.AddRow(k, r.LUT, r.FF, r.DSP, r.BRAM, cr.NTTTimeAtK(k))
	}
	t.AddNote("the inflection at k=3 balances pass count against fused-kernel density")
	t.Write(os.Stdout)
	return nil
}

func runFig11(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		return err
	}
	em := arch.DefaultEnergy()
	tr := workloads.ResNet20(workloads.PaperSpec())
	t := report.New("Fig 11 — lane sensitivity (ResNet-20)",
		"lanes", "time (ms)", "energy (J)", "EDP (J·s)", "speedup vs 64")
	var base float64
	for _, lanes := range []int{64, 128, 256, 512} {
		cfg := arch.U280()
		cfg.Lanes = lanes
		m, err := arch.NewModel(cfg, arch.PaperParams())
		if err != nil {
			return err
		}
		rep := arch.Simulate(m, em, tr)
		if base == 0 {
			base = rep.TotalTime
		}
		t.AddRow(lanes, rep.TotalTime*1e3, rep.TotalEnergy, rep.EDP,
			fmt.Sprintf("%.2f x", base/rep.TotalTime))
	}
	t.AddNote("growth slows toward 512 lanes as streaming ops hit the bandwidth wall")
	t.Write(os.Stdout)
	return nil
}

func runFig12(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, em := stdModel()
	t := report.New("Fig 12 — energy breakdown per benchmark (%)",
		"benchmark", "total (J)", "HBM", "MM", "NTT", "MA", "Automorphism", "static")
	for _, tr := range workloads.All(workloads.PaperSpec()) {
		b := arch.SimulateEnergyBreakdown(m, em, tr)
		total := b.Total()
		t.AddRow(tr.Name, total, b.HBM/total*100, b.MM/total*100, b.NTT/total*100,
			b.MA/total*100, b.Auto/total*100, b.Static/total*100)
	}
	t.Write(os.Stdout)
	return nil
}

func runCPU(fs *flag.FlagSet, args []string) error {
	logN := fs.Int("logn", 13, "ring degree log2 (paper uses 16; 13 is faster)")
	limbs := fs.Int("limbs", 12, "RNS limbs (paper uses 45)")
	reps := fs.Int("reps", 5, "repetitions per operation")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "setting up keys for N=2^%d, %d limbs (this can take a while)...\n", *logN, *limbs)
	meas, err := baseline.NewCPUMeasurement(*logN, *limbs, 45)
	if err != nil {
		return err
	}
	rows := meas.Measure(*reps)
	t := report.New(fmt.Sprintf("CPU baseline (this machine, single thread, N=2^%d, %d limbs)", *logN, *limbs),
		"operation", "ops/s", "ms/op")
	for _, r := range rows {
		t.AddRow(r.Op, r.OpsPerS, 1000/r.OpsPerS)
	}
	t.AddNote("compare shapes with the paper's CPU column (Xeon 6234, N=2^16, L=44)")
	t.Write(os.Stdout)
	return nil
}
