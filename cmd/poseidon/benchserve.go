package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"poseidon/internal/ckks"
	"poseidon/internal/server"
)

func init() {
	register("benchserve",
		"multi-tenant serving load test: batched vs serial dispatch ops/sec, p99, batch occupancy, emitted as BENCH_serve.json (-gate asserts batching wins)",
		runBenchServe)
}

// servePhase is one load-test pass (serial or batched dispatch).
type servePhase struct {
	MaxBatch    int      `json:"max_batch"`
	Ops         int      `json:"ops"`
	ElapsedSec  float64  `json:"elapsed_sec"`
	OpsPerSec   float64  `json:"ops_per_sec"`
	P50Ns       int64    `json:"p50_ns"`
	P99Ns       int64    `json:"p99_ns"`
	MeanBatch   float64  `json:"mean_batch"`
	BatchedFrac float64  `json:"batched_frac"`
	Occupancy   []uint64 `json:"occupancy"`
	HoistGroups uint64   `json:"hoist_groups"`
	HoistShared uint64   `json:"hoist_shared"`
}

// serveReport is the BENCH_serve.json schema.
type serveReport struct {
	GeneratedBy string `json:"generated_by"`
	LogN        int    `json:"log_n"`
	QLimbs      int    `json:"q_limbs"`
	Workers     int    `json:"workers"`
	GOMAXPROCS  int    `json:"gomaxprocs"`

	Tenants int `json:"tenants"`
	Keysets int `json:"keysets"`
	Bursts  int `json:"bursts"`
	Burst   int `json:"burst"` // same-ciphertext rotations per burst

	BytesInPerOp  int `json:"bytes_in_per_op"`
	BytesOutPerOp int `json:"bytes_out_per_op"`

	Serial  servePhase `json:"serial"`
	Batched servePhase `json:"batched"`
	Speedup float64    `json:"speedup"` // batched ops/sec over serial

	Gate struct {
		Enabled      bool    `json:"enabled"`
		MinSpeedup   float64 `json:"min_speedup"`
		MinMeanBatch float64 `json:"min_mean_batch"`
		Pass         bool    `json:"pass"`
	} `json:"gate"`
}

// benchTenantKeys is one shared keyset: several simulated tenants register
// the same decoded key objects (pointer-shared, read-only) so hundreds of
// tenants don't cost hundreds of keygens — the scheduler still sees them
// as distinct tenants and never shares hoisting across them.
type benchTenantKeys struct {
	rlk     *ckks.RelinearizationKey
	rtk     *ckks.RotationKeySet
	ctBytes []byte
	decr    *ckks.Decryptor
	enc     *ckks.Encoder
	z       []complex128
}

// runBenchServe measures the serving layer's batching win on a rotation-
// burst workload: every client issues bursts of rotations of one input
// ciphertext, the shape produced by BSGS linear transforms, so batched
// dispatch can amortize the hoisted digit decomposition across each burst
// while serial dispatch pays it per rotation. The same offered load runs
// once with MaxBatch=1 (serial) and once batched; the gate asserts the
// batched pass clears the required ops/sec ratio with real batch
// occupancy, i.e. that request fusion — the paper's operator time-
// multiplexing, in software — actually buys throughput.
func runBenchServe(fs *flag.FlagSet, args []string) error {
	logN := fs.Int("logn", 11, "ring degree log2")
	workers := fs.Int("workers", 1, "evaluator worker goroutines")
	tenants := fs.Int("tenants", 128, "simulated concurrent tenants")
	keysets := fs.Int("keysets", 8, "distinct key materials shared across tenants")
	bursts := fs.Int("bursts", 4, "rotation bursts per tenant")
	burst := fs.Int("burst", 4, "same-ciphertext rotations per burst")
	maxBatch := fs.Int("maxbatch", 16, "batched-phase fusion limit")
	flush := fs.Duration("flush", time.Millisecond, "batch flush timeout")
	out := fs.String("o", "BENCH_serve.json", "output path ('-' for stdout)")
	gate := fs.Bool("gate", false, "fail unless batched beats serial by -minspeedup at -minmeanbatch occupancy")
	minSpeedup := fs.Float64("minspeedup", 1.2, "required batched/serial ops-per-sec ratio")
	minMeanBatch := fs.Float64("minmeanbatch", 4.0, "required mean batch occupancy in the batched phase")
	if err := fs.Parse(args); err != nil {
		return err
	}

	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN:     *logN,
		LogQ:     []int{50, 40, 40, 40},
		LogP:     []int{51, 51},
		LogScale: 40,
		Workers:  *workers,
	})
	if err != nil {
		return err
	}
	if *keysets > *tenants {
		*keysets = *tenants
	}
	steps := []int{1, 2, 4, 8}

	keys := make([]*benchTenantKeys, *keysets)
	for i := range keys {
		kgen := ckks.NewKeyGenerator(params, int64(4000+i))
		sk := kgen.GenSecretKey()
		pk := kgen.GenPublicKey(sk)
		enc := ckks.NewEncoder(params)
		encr := ckks.NewEncryptor(params, pk, int64(5000+i))
		rng := rand.New(rand.NewSource(int64(6000 + i)))
		z := make([]complex128, params.Slots)
		for j := range z {
			z[j] = complex(2*rng.Float64()-1, 2*rng.Float64()-1)
		}
		ctBytes, err := encr.Encrypt(enc.Encode(z, params.MaxLevel(), params.Scale)).MarshalBinary()
		if err != nil {
			return err
		}
		keys[i] = &benchTenantKeys{
			rlk:     kgen.GenRelinearizationKey(sk),
			rtk:     kgen.GenRotationKeys(sk, steps, false),
			ctBytes: ctBytes,
			decr:    ckks.NewDecryptor(params, sk),
			enc:     enc,
			z:       z,
		}
	}

	rep := serveReport{
		GeneratedBy: "poseidon benchserve",
		LogN:        *logN,
		QLimbs:      params.MaxLevel() + 1,
		Workers:     *workers,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Tenants:     *tenants,
		Keysets:     *keysets,
		Bursts:      *bursts,
		Burst:       *burst,
	}
	sampleReq := server.EncodeEvalRequest(&server.EvalRequest{
		Tenant: "t", Op: server.OpRotate, Steps: 1, Ct: keys[0].ctBytes,
	})
	rep.BytesInPerOp = len(sampleReq)

	phase := func(phaseMaxBatch int) (servePhase, error) {
		srv, err := server.NewEvalServer(server.Config{
			Params:       params,
			MaxBatch:     phaseMaxBatch,
			FlushTimeout: *flush,
			QueueDepth:   4 * *tenants,
			RegistryCap:  *tenants + 1,
		})
		if err != nil {
			return servePhase{}, err
		}
		defer srv.Close()
		names := make([]string, *tenants)
		for i := range names {
			names[i] = fmt.Sprintf("bench-%03d", i)
			if err := srv.Registry().Register(names[i], keys[i%*keysets].rlk, keys[i%*keysets].rtk); err != nil {
				return servePhase{}, err
			}
		}

		totalOps := *tenants * *bursts * *burst
		latencies := make([]int64, totalOps)
		errs := make(chan error, *tenants)
		var wg sync.WaitGroup
		start := time.Now()
		for ti := 0; ti < *tenants; ti++ {
			wg.Add(1)
			go func(ti int) {
				defer wg.Done()
				ks := keys[ti%*keysets]
				base := ti * *bursts * *burst
				for b := 0; b < *bursts; b++ {
					var burstWg sync.WaitGroup
					for k := 0; k < *burst; k++ {
						burstWg.Add(1)
						go func(b, k int) {
							defer burstWg.Done()
							req := &server.EvalRequest{
								Tenant: names[ti],
								Op:     server.OpRotate,
								Steps:  steps[k%len(steps)],
								Ct:     ks.ctBytes,
							}
							opStart := time.Now()
							_, _, err := srv.Eval(req)
							latencies[base+b**burst+k] = time.Since(opStart).Nanoseconds()
							if err != nil {
								select {
								case errs <- fmt.Errorf("%s: %v", names[ti], err):
								default:
								}
							}
						}(b, k)
					}
					burstWg.Wait()
				}
			}(ti)
		}
		wg.Wait()
		elapsed := time.Since(start)
		select {
		case err := <-errs:
			return servePhase{}, err
		default:
		}

		// Decrypt-validate one rotation per keyset so the bench numbers
		// cannot come from wrong answers.
		for i, ks := range keys {
			ct, _, err := srv.Eval(&server.EvalRequest{
				Tenant: names[i], Op: server.OpRotate, Steps: 1, Ct: ks.ctBytes,
			})
			if err != nil {
				return servePhase{}, err
			}
			got := ks.enc.Decode(ks.decr.Decrypt(ct))
			n := len(ks.z)
			for j := range got {
				want := ks.z[(j+1)%n]
				if d := got[j] - want; real(d)*real(d)+imag(d)*imag(d) > 1e-6 {
					return servePhase{}, fmt.Errorf("keyset %d: rotation validation failed at slot %d", i, j)
				}
			}
		}

		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		st := srv.Stats()
		ph := servePhase{
			MaxBatch:    phaseMaxBatch,
			Ops:         totalOps,
			ElapsedSec:  elapsed.Seconds(),
			OpsPerSec:   float64(totalOps) / elapsed.Seconds(),
			P50Ns:       latencies[totalOps/2],
			P99Ns:       latencies[totalOps*99/100],
			MeanBatch:   st.MeanBatch,
			BatchedFrac: st.BatchedFrac,
			Occupancy:   st.Occupancy,
			HoistGroups: st.HoistGroups,
			HoistShared: st.HoistShared,
		}
		return ph, nil
	}

	serial, err := phase(1)
	if err != nil {
		return fmt.Errorf("serial phase: %w", err)
	}
	batched, err := phase(*maxBatch)
	if err != nil {
		return fmt.Errorf("batched phase: %w", err)
	}
	rep.Serial, rep.Batched = serial, batched
	rep.Speedup = batched.OpsPerSec / serial.OpsPerSec

	ct := new(ckks.Ciphertext)
	if err := ct.UnmarshalBinary(keys[0].ctBytes); err == nil {
		if b, err := ct.MarshalBinary(); err == nil {
			rep.BytesOutPerOp = len(b)
		}
	}

	rep.Gate.Enabled = *gate
	rep.Gate.MinSpeedup = *minSpeedup
	rep.Gate.MinMeanBatch = *minMeanBatch
	rep.Gate.Pass = rep.Speedup >= *minSpeedup && batched.MeanBatch >= *minMeanBatch

	blob, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if *out == "-" {
		os.Stdout.Write(blob)
	} else {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("benchserve: serial %.1f ops/s, batched %.1f ops/s (%.2fx, mean batch %.2f, %d hoists shared)\n",
		serial.OpsPerSec, batched.OpsPerSec, rep.Speedup, batched.MeanBatch, batched.HoistShared)

	if *gate && !rep.Gate.Pass {
		return fmt.Errorf("gate: speedup %.3f (need ≥ %.2f) at mean batch %.2f (need ≥ %.2f)",
			rep.Speedup, *minSpeedup, batched.MeanBatch, *minMeanBatch)
	}
	return nil
}
