package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"poseidon/internal/ckks"
	"poseidon/internal/fault"
)

func init() {
	register("faultcampaign", "fault-injection campaign: detection and false-positive rates of the integrity guards, emitted as JSON", runFaultCampaign)
}

// campaignClass is the per-fault-class result in BENCH_fault.json.
type campaignClass struct {
	Site          string  `json:"site"`  // HBM (read-back) or NTT (datapath)
	Class         string  `json:"class"` // bit_flip, multi_bit_flip, stuck_lane, ...
	Trials        int     `json:"trials"`
	Detected      int     `json:"detected"`
	DetectionRate float64 `json:"detection_rate"`
	Gated         bool    `json:"gated"` // participates in the -gate threshold
}

// campaignGuardStats mirrors the evaluator's guard counters after the run.
type campaignGuardStats struct {
	Seals           uint64 `json:"seals"`
	Verifies        uint64 `json:"verifies"`
	SpotChecks      uint64 `json:"spot_checks"`
	IntegrityFaults uint64 `json:"integrity_faults"`
	NoiseFlags      uint64 `json:"noise_flags"`
}

// campaignReport is the BENCH_fault.json schema.
type campaignReport struct {
	GeneratedBy     string             `json:"generated_by"`
	LogN            int                `json:"log_n"`
	QLimbs          int                `json:"q_limbs"`
	Seed            int64              `json:"seed"`
	VisitsPerChain  map[string]uint64  `json:"visits_per_chain"` // injector visits one clean chain generates per site
	Classes         []campaignClass    `json:"classes"`
	CleanRuns       int                `json:"clean_runs"`
	FalsePositives  int                `json:"false_positives"`
	GuardedNsPerOp  float64            `json:"guarded_ns_per_chain"`
	UnguardedNsPer  float64            `json:"unguarded_ns_per_chain"`
	GuardOverhead   string             `json:"guard_overhead"`
	Guards          campaignGuardStats `json:"guards"`
}

// campaignRig owns the fixed scheme material a campaign reuses across
// trials: keys, two sealed input ciphertexts, pre-created destinations and
// the armed injector shared by both rings.
type campaignRig struct {
	params *ckks.Parameters
	ev     *ckks.Evaluator
	inj    *fault.Injector
	ctA    *ckks.Ciphertext
	ctB    *ckks.Ciphertext
	prod   *ckks.Ciphertext
	drop   *ckks.Ciphertext
	rot    *ckks.Ciphertext
	acc    *ckks.Ciphertext
}

func newCampaignRig(logN int, seed int64) (*campaignRig, error) {
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN:     logN,
		LogQ:     []int{50, 40, 40},
		LogP:     []int{51},
		LogScale: 40,
		Workers:  1, // deterministic visit numbering
	})
	if err != nil {
		return nil, err
	}
	kgen := ckks.NewKeyGenerator(params, seed)
	sk := kgen.GenSecretKey()
	pk := kgen.GenPublicKey(sk)
	rlk := kgen.GenRelinearizationKey(sk)
	rtk := kgen.GenRotationKeys(sk, []int{1}, false)
	ev := ckks.NewEvaluator(params, rlk, rtk)

	enc := ckks.NewEncoder(params)
	encr := ckks.NewEncryptor(params, pk, seed+1)
	vals := make([]complex128, params.Slots)
	for i := range vals {
		vals[i] = complex(float64(i%13)/13, float64(i%7)/7)
	}
	level := params.MaxLevel()
	rig := &campaignRig{
		params: params,
		ev:     ev,
		inj:    fault.NewInjector(seed + 2),
		ctA:    encr.Encrypt(enc.Encode(vals, level, params.Scale)),
		ctB:    encr.Encrypt(enc.Encode(vals, level, params.Scale)),
		prod:   ckks.NewCiphertext(params, level),
		drop:   ckks.NewCiphertext(params, level-1),
		rot:    ckks.NewCiphertext(params, level-1),
		acc:    ckks.NewCiphertext(params, level-1),
	}
	params.RingQ.SetFaultInjector(rig.inj)
	params.RingP.SetFaultInjector(rig.inj)
	return rig, nil
}

// chain runs the campaign workload — multiply-relinearize, rescale, rotate,
// accumulate, final read-back — on fresh sealed copies of the inputs (each
// trial's injected fault corrupts the copies, never the originals) and
// returns the first guard error.
func (rig *campaignRig) chain() error {
	ev := rig.ev
	a, b := rig.ctA.CopyNew(), rig.ctB.CopyNew()
	if ev.GuardsEnabled() {
		ev.SealIntegrity(a)
		ev.SealIntegrity(b)
	}
	if _, err := ev.TryMulRelinInto(rig.prod, a, b); err != nil {
		return err
	}
	if _, err := ev.TryRescaleInto(rig.drop, rig.prod); err != nil {
		return err
	}
	if _, err := ev.TryRotateInto(rig.rot, rig.drop, 1); err != nil {
		return err
	}
	if _, err := ev.TryAddInto(rig.acc, rig.drop, rig.rot); err != nil {
		return err
	}
	return ev.VerifyIntegrity(rig.acc)
}

// runFaultCampaign measures what the runtime integrity guards actually
// catch: for each fault class, every trial arms the injector at a random
// visit of a clean-profiled site, reruns the evaluation chain and records
// whether a guard reported ErrIntegrity. Clean (disarmed) runs bound the
// false-positive rate, and a guards-off timing pass prices the overhead.
func runFaultCampaign(fs *flag.FlagSet, args []string) error {
	logN := fs.Int("logn", 8, "ring degree log2")
	trials := fs.Int("trials", 1000, "injection trials per gated fault class")
	clean := fs.Int("clean", 200, "clean runs for the false-positive bound")
	seed := fs.Int64("seed", 99, "campaign seed (keys, inputs, injection sites)")
	out := fs.String("o", "BENCH_fault.json", "output path ('-' for stdout)")
	gate := fs.Bool("gate", false, "fail unless single-bit HBM detection ≥ 99% with zero false positives")
	if err := fs.Parse(args); err != nil {
		return err
	}

	rig, err := newCampaignRig(*logN, *seed)
	if err != nil {
		return err
	}
	ev := rig.ev
	ev.EnableGuards(*seed + 3)
	ev.EnableSpotCheck()

	// Profile one clean chain: how many injector visits each site sees.
	// ArmRandom draws the injection visit uniformly from this range.
	rig.inj.ResetVisits()
	if err := rig.chain(); err != nil {
		return fmt.Errorf("clean profiling chain failed: %w", err)
	}
	profile := rig.inj.Stats()
	hbmVisits := profile.VisitsAt(fault.SiteHBM)
	nttVisits := profile.VisitsAt(fault.SiteNTT)
	if hbmVisits == 0 {
		return fmt.Errorf("clean chain generated no HBM read-back visits — guards not wired?")
	}

	rep := campaignReport{
		GeneratedBy: "poseidon faultcampaign",
		LogN:        *logN,
		QLimbs:      rig.params.MaxLevel() + 1,
		Seed:        *seed,
		VisitsPerChain: map[string]uint64{
			fault.SiteHBM.String(): hbmVisits,
			fault.SiteNTT.String(): nttVisits,
		},
	}

	runClass := func(site fault.Site, class fault.Class, visits uint64, n int, gated bool) campaignClass {
		detected := 0
		for t := 0; t < n; t++ {
			rig.inj.ResetVisits()
			rig.inj.ArmRandom(site, class, visits)
			err := rig.chain()
			rig.inj.Disarm()
			if errors.Is(err, ckks.ErrIntegrity) {
				detected++
			} else if err != nil && class == fault.Panic && errors.Is(err, ckks.ErrInternal) {
				detected++ // injected panics surface as recovered internal errors
			}
		}
		return campaignClass{
			Site: site.String(), Class: class.String(),
			Trials: n, Detected: detected,
			DetectionRate: float64(detected) / float64(n),
			Gated:         gated,
		}
	}

	// HBM read-back classes: checksum-sealed, so single-bit flips are the
	// gated 100%-detection contract; the multi-bit and stuck-lane rates
	// ride along (sum-mod-q can in principle collide on multi-coefficient
	// corruption, so they are reported, not gated).
	rep.Classes = append(rep.Classes,
		runClass(fault.SiteHBM, fault.BitFlip, hbmVisits, *trials, true),
		runClass(fault.SiteHBM, fault.MultiBitFlip, hbmVisits, *trials/2, false),
		runClass(fault.SiteHBM, fault.StuckLane, hbmVisits, *trials/2, false),
	)
	// NTT datapath classes: only the one-random-limb spot-check can see
	// these, so detection is probabilistic by design — reported, not gated.
	if nttVisits > 0 {
		rep.Classes = append(rep.Classes,
			runClass(fault.SiteNTT, fault.BitFlip, nttVisits, *trials/2, false),
			runClass(fault.SiteNTT, fault.StuckLane, nttVisits, *trials/2, false),
			runClass(fault.SiteNTT, fault.DroppedTwiddle, nttVisits, *trials/2, false),
		)
	}

	// False-positive bound: disarmed chains must never report a fault.
	rig.inj.Disarm()
	for t := 0; t < *clean; t++ {
		if err := rig.chain(); err != nil {
			rep.FalsePositives++
		}
	}
	rep.CleanRuns = *clean

	// Guard overhead: the same chain with guards on vs off. The guard
	// counters are snapshotted first (they mirror the campaign itself, and
	// re-arming the guards resets them). Each trial then times a guarded
	// and an unguarded batch back to back — drift within a pair mostly
	// cancels — and the published figure is the median pair by ratio, which
	// rejects the trials a scheduler tick or GC pause happened to land in.
	// Timing each side as one contiguous block let slow machine drift
	// masquerade as guard cost, swinging the published percentage by tens
	// of points between runs.
	gs := ev.GuardStats()
	rep.Guards = campaignGuardStats{
		Seals: gs.Seals, Verifies: gs.Verifies, SpotChecks: gs.SpotChecks,
		IntegrityFaults: gs.IntegrityFaults, NoiseFlags: gs.NoiseFlags,
	}
	timeChain := func(iters int) float64 {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := rig.chain(); err != nil {
				panic(fmt.Sprintf("faultcampaign: timing chain failed: %v", err))
			}
		}
		return float64(time.Since(start).Nanoseconds()) / float64(iters)
	}
	const (
		timingIters  = 200
		timingTrials = 7
	)
	timeChain(5) // warm-up
	pairs := make([][2]float64, timingTrials)
	for t := range pairs {
		ev.EnableGuards(*seed + 3)
		ev.EnableSpotCheck()
		g := timeChain(timingIters)
		ev.DisableGuards()
		pairs[t] = [2]float64{g, timeChain(timingIters)}
	}
	sort.Slice(pairs, func(i, j int) bool {
		return pairs[i][0]/pairs[i][1] < pairs[j][0]/pairs[j][1]
	})
	med := pairs[timingTrials/2]
	rep.GuardedNsPerOp, rep.UnguardedNsPer = med[0], med[1]
	if rep.UnguardedNsPer > 0 {
		rep.GuardOverhead = fmt.Sprintf("%.1f%%", 100*(rep.GuardedNsPerOp/rep.UnguardedNsPer-1))
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if *out == "-" {
		if _, err := os.Stdout.Write(blob); err != nil {
			return err
		}
	} else {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
	for _, c := range rep.Classes {
		fmt.Fprintf(os.Stderr, "  %-4s %-16s %4d/%4d detected (%.1f%%)\n",
			c.Site, c.Class, c.Detected, c.Trials, 100*c.DetectionRate)
	}
	fmt.Fprintf(os.Stderr, "  false positives: %d/%d clean runs; guard overhead %s\n",
		rep.FalsePositives, rep.CleanRuns, rep.GuardOverhead)

	if *gate {
		for _, c := range rep.Classes {
			if c.Gated && c.DetectionRate < 0.99 {
				return fmt.Errorf("fault gate: %s %s detection %.3f < 0.99", c.Site, c.Class, c.DetectionRate)
			}
		}
		if rep.FalsePositives != 0 {
			return fmt.Errorf("fault gate: %d false positives in %d clean runs", rep.FalsePositives, rep.CleanRuns)
		}
		fmt.Fprintln(os.Stderr, "  fault gate: PASS")
	}
	return nil
}
