// Command poseidon regenerates every table and figure of the paper's
// evaluation from the models in this repository. Each subcommand maps to
// one experiment; `all` runs everything.
//
// Usage:
//
//	poseidon <experiment> [flags]
//
// Experiments: table2 table3 table4 table5 table6 table7 table8 table9
// table10 table11 table12 fig7 fig8 fig9 fig10 fig11 fig12 cpu all
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
)

type experiment struct {
	name string
	desc string
	run  func(*flag.FlagSet, []string) error
}

var experiments []experiment

func register(name, desc string, run func(*flag.FlagSet, []string) error) {
	experiments = append(experiments, experiment{name, desc, run})
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	name := os.Args[1]
	if name == "all" {
		sort.Slice(experiments, func(i, j int) bool { return experiments[i].name < experiments[j].name })
		for _, e := range experiments {
			if e.name == "cpu" || e.name == "benchkernels" || e.name == "benchalloc" || e.name == "faultcampaign" || e.name == "benchtelemetry" || e.name == "benchserve" || e.name == "benchlinalg" || e.name == "chaoscampaign" || e.name == "benchtrace" || e.name == "tracereport" {
				continue // slow (or, for tracereport, needs an input dump); run explicitly
			}
			fs := flag.NewFlagSet(e.name, flag.ExitOnError)
			if err := e.run(fs, nil); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
				os.Exit(1)
			}
		}
		return
	}
	for _, e := range experiments {
		if e.name == name {
			fs := flag.NewFlagSet(e.name, flag.ExitOnError)
			if err := e.run(fs, os.Args[2:]); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
				os.Exit(1)
			}
			return
		}
	}
	fmt.Fprintf(os.Stderr, "unknown experiment %q\n\n", name)
	usage()
	os.Exit(2)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: poseidon <experiment> [flags]")
	fmt.Fprintln(os.Stderr, "\nexperiments:")
	sorted := append([]experiment(nil), experiments...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].name < sorted[j].name })
	for _, e := range sorted {
		fmt.Fprintf(os.Stderr, "  %-10s %s\n", e.name, e.desc)
	}
	fmt.Fprintln(os.Stderr, "  all        run every experiment except cpu")
}
