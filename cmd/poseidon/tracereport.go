package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"poseidon/internal/tracing"
)

func init() {
	register("tracereport", "convert a flight-recorder dump (/debug/requests?format=json) into Chrome trace_event JSON loadable in Perfetto or chrome://tracing", runTraceReport)
}

// runTraceReport converts the flight recorder's JSON dump into the Chrome
// trace_event format: each retained request becomes a named track whose
// span tree renders as nested slices on a shared wall-clock axis. The
// input is either a saved dump (-in) or fetched live from a running
// poseidond's telemetry endpoint (-url, pointing at the base of the
// telemetry mux or directly at /debug/requests).
func runTraceReport(fs *flag.FlagSet, args []string) error {
	in := fs.String("in", "", "flight-recorder JSON dump to convert")
	url := fs.String("url", "", "fetch the dump live, e.g. http://127.0.0.1:9090/debug/requests")
	out := fs.String("o", "trace.json", "Chrome trace_event output path ('-' for stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*in == "") == (*url == "") {
		return fmt.Errorf("tracereport: exactly one of -in or -url is required")
	}

	var blob []byte
	var err error
	switch {
	case *in != "":
		blob, err = os.ReadFile(*in)
		if err != nil {
			return err
		}
	default:
		u := *url
		if u[len(u)-1] == '/' {
			u = u[:len(u)-1]
		}
		// Accept either the mux base or the endpoint itself.
		if len(u) < len("/debug/requests") || u[len(u)-len("/debug/requests"):] != "/debug/requests" {
			u += "/debug/requests"
		}
		cl := &http.Client{Timeout: 10 * time.Second}
		resp, err := cl.Get(u + "?format=json")
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("tracereport: GET %s: HTTP %d", u, resp.StatusCode)
		}
		blob, err = io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
	}

	var dump struct {
		Traces []*tracing.Finished `json:"traces"`
	}
	if err := json.Unmarshal(blob, &dump); err != nil {
		return fmt.Errorf("tracereport: parse dump: %w", err)
	}
	if len(dump.Traces) == 0 {
		return fmt.Errorf("tracereport: dump holds no traces (is tracing enabled and sampled?)")
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := tracing.WriteChromeTrace(w, dump.Traces); err != nil {
		return err
	}
	if *out != "-" {
		fmt.Fprintf(os.Stderr, "wrote %s (%d traces) — load in https://ui.perfetto.dev or chrome://tracing\n",
			*out, len(dump.Traces))
	}
	return nil
}
