package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"

	"poseidon/internal/ckks"
	"poseidon/internal/ntt"
	"poseidon/internal/numeric"
	"poseidon/internal/ring"
)

func init() {
	register("benchkernels", "strict vs lazy vs fused kernel microbenchmarks + NTT k-sweep, emitted as JSON", runBenchKernels)
}

// kernelBench is one timed configuration in BENCH_kernels.json.
type kernelBench struct {
	Name    string  `json:"name"`    // forward_ntt, inverse_ntt, mul_elementwise, keyswitch
	Mode    string  `json:"mode"`    // strict (reference), lazy (radix-2 production), fused-k<K>
	Workers int     `json:"workers"` // limb-parallel worker count (1 for scalar kernels)
	NsPerOp float64 `json:"ns_per_op"`
	Iters   int     `json:"iterations"`
}

// hostContext records where the numbers were taken, so perf trajectories
// across machines are interpretable.
type hostContext struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GoVersion  string `json:"go_version"`
	GOAMD64    string `json:"goamd64,omitempty"` // microarch level env, if set
	CPU        string `json:"cpu"`               // /proc/cpuinfo model name (best effort)
	CPUFlags   string `json:"cpu_flags,omitempty"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// sweepEntry is one fusion degree of the Fig-10 k-sweep: measured ns/op for
// the fused forward/inverse transforms next to the modeled per-block Table II
// costs, so the measured inflection can be read against the paper's model.
type sweepEntry struct {
	K              int     `json:"k"`
	Passes         int     `json:"passes"` // ceil(logN/k) memory passes
	ForwardNs      float64 `json:"forward_ns_per_op"`
	InverseNs      float64 `json:"inverse_ns_per_op"`
	ForwardSpeedup float64 `json:"forward_speedup_vs_lazy"`
	InverseSpeedup float64 `json:"inverse_speedup_vs_lazy"`

	// Modeled per-2^k-block costs from the paper's Table II (the hardware
	// TAM tradeoff; the software kernel's arithmetic matches the unfused
	// column while its reduction slots scale with passes).
	ModelFusedTwiddles   int `json:"model_fused_twiddles"`
	ModelFusedMults      int `json:"model_fused_mults"`
	ModelFusedReductions int `json:"model_fused_reductions"`
	ModelUnfusedMults    int `json:"model_unfused_mults"`
}

// kernelReport is the BENCH_kernels.json schema.
type kernelReport struct {
	GeneratedBy string      `json:"generated_by"`
	Host        hostContext `json:"host"`
	LogN        int         `json:"log_n"`
	N           int         `json:"n"`
	ModulusBits int         `json:"modulus_bits"`

	// Dispatch documents the kernel-selection order and the sweep-selected
	// fusion degree the production dispatch should run at.
	Dispatch       string `json:"dispatch"`
	FusionSelected int    `json:"fusion_selected"`
	Inflection     bool   `json:"inflection"` // some k beats both neighbors

	Sweep      []sweepEntry      `json:"k_sweep"`
	Benchmarks []kernelBench     `json:"benchmarks"`
	Speedups   map[string]string `json:"speedups"`
}

// readHostContext fills the host block; /proc/cpuinfo fields are best-effort
// (absent on non-Linux hosts).
func readHostContext() hostContext {
	h := hostContext{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GoVersion:  runtime.Version(),
		GOAMD64:    os.Getenv("GOAMD64"),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	if blob, err := os.ReadFile("/proc/cpuinfo"); err == nil {
		interesting := map[string]bool{
			"sse4_2": true, "avx": true, "avx2": true, "avx512f": true,
			"bmi2": true, "adx": true, "neon": true, "sve": true,
		}
		for _, line := range strings.Split(string(blob), "\n") {
			k, v, ok := strings.Cut(line, ":")
			if !ok {
				continue
			}
			k, v = strings.TrimSpace(k), strings.TrimSpace(v)
			switch k {
			case "model name":
				if h.CPU == "" {
					h.CPU = v
				}
			case "flags", "Features":
				if h.CPUFlags == "" {
					var have []string
					for _, fl := range strings.Fields(v) {
						if interesting[fl] {
							have = append(have, fl)
						}
					}
					h.CPUFlags = strings.Join(have, " ")
				}
			}
		}
	}
	if h.CPU == "" {
		h.CPU = "unknown"
	}
	return h
}

// runBenchKernels times the strict reference kernels, the lazy radix-2
// production kernels, and the fused radix-2^k plans on identical inputs —
// forward/inverse NTT (with a full k=1..6 sweep reproducing the Fig-10
// inflection), elementwise multiplication, and the keyswitch pipeline — and
// writes the results to a machine-readable JSON file. All kernel families
// produce bit-identical outputs (proved by the differential suites); this
// reports what laziness and fusion buy in time. With -gate, the run fails
// unless the fused forward AND inverse NTT beat the lazy radix-2 kernels by
// the ROADMAP floor (1.5×) at the sweep-selected k, and the sweep shows a
// measured inflection (some k strictly beats both neighbors).
func runBenchKernels(fs *flag.FlagSet, args []string) error {
	logN := fs.Int("logn", 13, "ring degree log2 for the NTT/elementwise kernels")
	out := fs.String("o", "BENCH_kernels.json", "output path ('-' for stdout)")
	gate := fs.Bool("gate", false, "fail unless fused fwd+inv NTT ≥1.5x lazy at the selected k, with a sweep inflection")
	if err := fs.Parse(args); err != nil {
		return err
	}
	n := 1 << uint(*logN)

	rep := kernelReport{
		GeneratedBy: "poseidon benchkernels",
		Host:        readHostContext(),
		LogN:        *logN,
		N:           n,
		ModulusBits: 59,
		Speedups:    map[string]string{},
	}

	qs, err := numeric.GenerateNTTPrimes(59, *logN, 1)
	if err != nil {
		return err
	}
	tab, err := ntt.NewTable(n, qs[0])
	if err != nil {
		return err
	}

	// Scalar transform kernels: one limb, workers=1 by construction.
	data := make([]uint64, n)
	for i := range data {
		data[i] = uint64(i) * 2654435761 % qs[0]
	}
	buf := make([]uint64, n)
	time := func(f func()) (float64, int) {
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f()
			}
		})
		return float64(r.T.Nanoseconds()) / float64(r.N), r.N
	}
	add := func(name, mode string, workers int, f func()) float64 {
		ns, iters := time(f)
		rep.Benchmarks = append(rep.Benchmarks, kernelBench{
			Name: name, Mode: mode, Workers: workers, NsPerOp: ns, Iters: iters,
		})
		return ns
	}
	add("forward_ntt", "strict", 1, func() { copy(buf, data); tab.ForwardStrict(buf) })
	lazyFwd := add("forward_ntt", "lazy", 1, func() { copy(buf, data); tab.Forward(buf) })
	add("inverse_ntt", "strict", 1, func() { copy(buf, data); tab.InverseStrict(buf) })
	lazyInv := add("inverse_ntt", "lazy", 1, func() { copy(buf, data); tab.Inverse(buf) })

	// The Fig-10 k-sweep: fused forward/inverse at every degree, measured
	// against the lazy radix-2 baseline and laid beside the modeled Table II
	// per-block costs.
	for k := 1; k <= 6; k++ {
		fwd, err := ntt.NewFusedPlan(tab, k)
		if err != nil {
			return err
		}
		inv, err := ntt.NewInverseFusedPlan(tab, k)
		if err != nil {
			return err
		}
		mode := fmt.Sprintf("fused-k%d", k)
		fns := add("forward_ntt", mode, 1, func() { copy(buf, data); fwd.Forward(buf) })
		ins := add("inverse_ntt", mode, 1, func() { copy(buf, data); inv.Inverse(buf) })
		model := ntt.FusedBlockCosts(k)
		rep.Sweep = append(rep.Sweep, sweepEntry{
			K:                    k,
			Passes:               fwd.Passes(),
			ForwardNs:            fns,
			InverseNs:            ins,
			ForwardSpeedup:       lazyFwd / fns,
			InverseSpeedup:       lazyInv / ins,
			ModelFusedTwiddles:   model.Twiddles,
			ModelFusedMults:      model.Mults,
			ModelFusedReductions: model.Reductions,
			ModelUnfusedMults:    ntt.UnfusedBlockCosts(k).Mults,
		})
	}

	// Sweep-select k by combined forward+inverse time, and check for a
	// measured inflection: some k strictly faster than both neighbors.
	total := func(e sweepEntry) float64 { return e.ForwardNs + e.InverseNs }
	best := 0
	for i := range rep.Sweep {
		if total(rep.Sweep[i]) < total(rep.Sweep[best]) {
			best = i
		}
	}
	sel := rep.Sweep[best]
	rep.FusionSelected = sel.K
	rep.Dispatch = fmt.Sprintf("strict > fused(k=%d) > lazy radix-2", sel.K)
	for i := 1; i < len(rep.Sweep)-1; i++ {
		if total(rep.Sweep[i]) < total(rep.Sweep[i-1]) && total(rep.Sweep[i]) < total(rep.Sweep[i+1]) {
			rep.Inflection = true
			break
		}
	}
	rep.Speedups[fmt.Sprintf("forward_ntt fused-k%d vs lazy", sel.K)] = fmt.Sprintf("%.2fx", sel.ForwardSpeedup)
	rep.Speedups[fmt.Sprintf("inverse_ntt fused-k%d vs lazy", sel.K)] = fmt.Sprintf("%.2fx", sel.InverseSpeedup)

	// Elementwise multiplication: Barrett reference vs the vector Montgomery
	// path, through the ring dispatcher the encoder/encryptor/evaluator use.
	rq, err := ring.NewRing(n, qs, 0)
	if err != nil {
		return err
	}
	pa, pb, po := rq.NewPoly(1), rq.NewPoly(1), rq.NewPoly(1)
	copy(pa.Coeffs[0], data)
	copy(pb.Coeffs[0], data)
	pa.IsNTT, pb.IsNTT = true, true
	rq.SetStrictKernels(true)
	add("mul_elementwise", "strict", 1, func() { rq.MulCoeffwise(po, pa, pb) })
	rq.SetStrictKernels(false)
	add("mul_elementwise", "lazy", 1, func() { rq.MulCoeffwise(po, pa, pb) })

	// Keyswitch: the full pipeline (decompose, ModUp, NTT, fused digit
	// inner product, ModDown) at workers=1 and at GOMAXPROCS, under the
	// strict, lazy, and fused-at-selected-k dispatch modes.
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN:     *logN,
		LogQ:     []int{55, 45, 45, 45},
		LogP:     []int{58, 58},
		LogScale: 45,
	})
	if err != nil {
		return err
	}
	kgen := ckks.NewKeyGenerator(params, 42)
	sk := kgen.GenSecretKey()
	rlk := kgen.GenRelinearizationKey(sk)
	pk := kgen.GenPublicKey(sk)
	encr := ckks.NewEncryptor(params, pk, 7)
	enc := ckks.NewEncoder(params)
	z := make([]complex128, params.Slots)
	for i := range z {
		z[i] = complex(float64(i%17)/17, float64(i%5)/5)
	}
	ct := encr.Encrypt(enc.Encode(z, params.MaxLevel(), params.Scale))
	ev := ckks.NewEvaluator(params, rlk, nil)

	workerCounts := []int{1}
	if g := runtime.GOMAXPROCS(0); g > 1 {
		workerCounts = append(workerCounts, g)
	}
	for _, w := range workerCounts {
		evw := ev.WithWorkers(w)
		params.SetStrictKernels(true)
		add("keyswitch", "strict", w, func() { evw.KeySwitch(ct, &rlk.SwitchingKey) })
		params.SetStrictKernels(false)
		lazyKS := add("keyswitch", "lazy", w, func() { evw.KeySwitch(ct, &rlk.SwitchingKey) })
		if err := params.SetFusionDegree(sel.K); err != nil {
			return err
		}
		fusedKS := add("keyswitch", fmt.Sprintf("fused-k%d", sel.K), w, func() { evw.KeySwitch(ct, &rlk.SwitchingKey) })
		if err := params.SetFusionDegree(0); err != nil {
			return err
		}
		rep.Speedups[fmt.Sprintf("keyswitch fused-k%d vs lazy/workers=%d", sel.K, w)] =
			fmt.Sprintf("%.2fx", lazyKS/fusedKS)
	}

	// Pair up lazy/strict runs into speedup ratios.
	type key struct {
		name    string
		workers int
	}
	strictNs := map[key]float64{}
	for _, b := range rep.Benchmarks {
		if b.Mode == "strict" {
			strictNs[key{b.Name, b.Workers}] = b.NsPerOp
		}
	}
	for _, b := range rep.Benchmarks {
		if b.Mode == "lazy" {
			if s, ok := strictNs[key{b.Name, b.Workers}]; ok && b.NsPerOp > 0 {
				rep.Speedups[fmt.Sprintf("%s/workers=%d", b.Name, b.Workers)] =
					fmt.Sprintf("%.2fx", s/b.NsPerOp)
			}
		}
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if *out == "-" {
		if _, err = os.Stdout.Write(blob); err != nil {
			return err
		}
	} else {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
	for k, v := range rep.Speedups {
		fmt.Fprintf(os.Stderr, "  %-40s %s\n", k, v)
	}
	fmt.Fprintf(os.Stderr, "  sweep-selected k=%d (%.2fx fwd, %.2fx inv vs lazy), inflection=%v\n",
		sel.K, sel.ForwardSpeedup, sel.InverseSpeedup, rep.Inflection)

	if *gate {
		const floor = 1.5
		if sel.ForwardSpeedup < floor || sel.InverseSpeedup < floor {
			return fmt.Errorf("benchkernels gate: fused NTT speedup at k=%d is %.2fx fwd / %.2fx inv, floor %.1fx",
				sel.K, sel.ForwardSpeedup, sel.InverseSpeedup, floor)
		}
		if !rep.Inflection {
			return fmt.Errorf("benchkernels gate: k-sweep shows no inflection (no k beats both neighbors)")
		}
	}
	return nil
}
