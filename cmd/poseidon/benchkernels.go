package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"poseidon/internal/ckks"
	"poseidon/internal/ntt"
	"poseidon/internal/numeric"
	"poseidon/internal/ring"
)

func init() {
	register("benchkernels", "strict vs lazy kernel microbenchmarks, emitted as JSON", runBenchKernels)
}

// kernelBench is one timed configuration in BENCH_kernels.json.
type kernelBench struct {
	Name    string  `json:"name"`    // forward_ntt, inverse_ntt, mul_elementwise, keyswitch
	Mode    string  `json:"mode"`    // strict (reference) or lazy (production)
	Workers int     `json:"workers"` // limb-parallel worker count (1 for scalar kernels)
	NsPerOp float64 `json:"ns_per_op"`
	Iters   int     `json:"iterations"`
}

// kernelReport is the BENCH_kernels.json schema.
type kernelReport struct {
	GeneratedBy string            `json:"generated_by"`
	LogN        int               `json:"log_n"`
	N           int               `json:"n"`
	ModulusBits int               `json:"modulus_bits"`
	GOMAXPROCS  int               `json:"gomaxprocs"`
	Benchmarks  []kernelBench     `json:"benchmarks"`
	Speedups    map[string]string `json:"speedups"` // lazy vs strict, per kernel per worker count
}

// runBenchKernels times the strict reference kernels against the lazy
// production kernels on identical inputs — forward/inverse NTT, elementwise
// multiplication, and the full keyswitch pipeline — and writes the results
// to a machine-readable JSON file. Both kernel families produce bit-identical
// outputs (proved by the differential suites); this reports what the laziness
// buys in time.
func runBenchKernels(fs *flag.FlagSet, args []string) error {
	logN := fs.Int("logn", 13, "ring degree log2 for the NTT/elementwise kernels")
	out := fs.String("o", "BENCH_kernels.json", "output path ('-' for stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	n := 1 << uint(*logN)

	rep := kernelReport{
		GeneratedBy: "poseidon benchkernels",
		LogN:        *logN,
		N:           n,
		ModulusBits: 59,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Speedups:    map[string]string{},
	}

	qs, err := numeric.GenerateNTTPrimes(59, *logN, 1)
	if err != nil {
		return err
	}
	tab, err := ntt.NewTable(n, qs[0])
	if err != nil {
		return err
	}

	// Scalar transform kernels: one limb, workers=1 by construction.
	data := make([]uint64, n)
	for i := range data {
		data[i] = uint64(i) * 2654435761 % qs[0]
	}
	buf := make([]uint64, n)
	add := func(name, mode string, workers int, f func()) {
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f()
			}
		})
		rep.Benchmarks = append(rep.Benchmarks, kernelBench{
			Name: name, Mode: mode, Workers: workers,
			NsPerOp: float64(r.T.Nanoseconds()) / float64(r.N), Iters: r.N,
		})
	}
	add("forward_ntt", "strict", 1, func() { copy(buf, data); tab.ForwardStrict(buf) })
	add("forward_ntt", "lazy", 1, func() { copy(buf, data); tab.Forward(buf) })
	add("inverse_ntt", "strict", 1, func() { copy(buf, data); tab.InverseStrict(buf) })
	add("inverse_ntt", "lazy", 1, func() { copy(buf, data); tab.Inverse(buf) })

	// Elementwise multiplication: Barrett reference vs the vector Montgomery
	// path, through the ring dispatcher the encoder/encryptor/evaluator use.
	rq, err := ring.NewRing(n, qs, 0)
	if err != nil {
		return err
	}
	pa, pb, po := rq.NewPoly(1), rq.NewPoly(1), rq.NewPoly(1)
	copy(pa.Coeffs[0], data)
	copy(pb.Coeffs[0], data)
	pa.IsNTT, pb.IsNTT = true, true
	rq.SetStrictKernels(true)
	add("mul_elementwise", "strict", 1, func() { rq.MulCoeffwise(po, pa, pb) })
	rq.SetStrictKernels(false)
	add("mul_elementwise", "lazy", 1, func() { rq.MulCoeffwise(po, pa, pb) })

	// Keyswitch: the full pipeline (decompose, ModUp, NTT, fused digit
	// inner product, ModDown) at workers=1 and at GOMAXPROCS.
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN:     *logN,
		LogQ:     []int{55, 45, 45, 45},
		LogP:     []int{58, 58},
		LogScale: 45,
	})
	if err != nil {
		return err
	}
	kgen := ckks.NewKeyGenerator(params, 42)
	sk := kgen.GenSecretKey()
	rlk := kgen.GenRelinearizationKey(sk)
	pk := kgen.GenPublicKey(sk)
	encr := ckks.NewEncryptor(params, pk, 7)
	enc := ckks.NewEncoder(params)
	z := make([]complex128, params.Slots)
	for i := range z {
		z[i] = complex(float64(i%17)/17, float64(i%5)/5)
	}
	ct := encr.Encrypt(enc.Encode(z, params.MaxLevel(), params.Scale))
	ev := ckks.NewEvaluator(params, rlk, nil)

	workerCounts := []int{1}
	if g := runtime.GOMAXPROCS(0); g > 1 {
		workerCounts = append(workerCounts, g)
	}
	for _, w := range workerCounts {
		evw := ev.WithWorkers(w)
		params.SetStrictKernels(true)
		add("keyswitch", "strict", w, func() { evw.KeySwitch(ct, &rlk.SwitchingKey) })
		params.SetStrictKernels(false)
		add("keyswitch", "lazy", w, func() { evw.KeySwitch(ct, &rlk.SwitchingKey) })
	}

	// Pair up lazy/strict runs into speedup ratios.
	type key struct {
		name    string
		workers int
	}
	strictNs := map[key]float64{}
	for _, b := range rep.Benchmarks {
		if b.Mode == "strict" {
			strictNs[key{b.Name, b.Workers}] = b.NsPerOp
		}
	}
	for _, b := range rep.Benchmarks {
		if b.Mode == "lazy" {
			if s, ok := strictNs[key{b.Name, b.Workers}]; ok && b.NsPerOp > 0 {
				rep.Speedups[fmt.Sprintf("%s/workers=%d", b.Name, b.Workers)] =
					fmt.Sprintf("%.2fx", s/b.NsPerOp)
			}
		}
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(blob)
		return err
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	for k, v := range rep.Speedups {
		fmt.Fprintf(os.Stderr, "  %-28s %s\n", k, v)
	}
	return nil
}
