package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"time"

	"poseidon/internal/ckks"
)

func init() {
	register("benchlinalg", "double-hoisted vs per-rotation BSGS linear transforms + n1 sweep, emitted as JSON", runBenchLinalg)
}

// linalgCase is one timed (case, path, n1) configuration in
// BENCH_linalg.json, with the engine's own work counters attached so the
// time delta can be read against the ModDown/NTT accounting that explains
// it.
type linalgCase struct {
	Case    string  `json:"case"` // dense, banded
	Path    string  `json:"path"` // double-hoisted, per-rotation
	N1      int     `json:"n1"`
	NsPerOp float64 `json:"ns_per_op"`
	Iters   int     `json:"iterations"` // per trial; NsPerOp is min-of-trials
	Trials  int     `json:"trials"`

	Stats ckks.LinTransStats `json:"stats"`
}

// linalgReport is the BENCH_linalg.json schema.
type linalgReport struct {
	GeneratedBy string      `json:"generated_by"`
	Host        hostContext `json:"host"`
	LogN        int         `json:"log_n"`
	Slots       int         `json:"slots"`
	Level       int         `json:"level"`
	Digits      int         `json:"digits"`

	Cases []linalgCase `json:"cases"`

	// The gate compares each path at its best sweep point on the dense
	// case: per-rotation bottoms out near n1 = √n (balanced rotation
	// counts), double-hoisting shifts the optimum toward wider baby steps
	// because lazy baby rotations cost no basis transforms.
	DenseBestDH     linalgCase `json:"dense_best_double_hoisted"`
	DenseBestPerRot linalgCase `json:"dense_best_per_rotation"`
	DenseSpeedup    float64    `json:"dense_speedup"`

	Speedups map[string]string `json:"speedups"`
}

// runBenchLinalg times the double-hoisted linear-transform engine against
// the per-rotation reference on a dense 2^(logN-1)-slot matrix (sweeping
// the baby-step width n1) and on a 9-diagonal wrap-around band, and writes
// the results to a machine-readable JSON file. The two paths are
// decrypt-equivalent (see the differential suite in internal/ckks); this
// reports what collapsing per-rotation ModDowns into one per giant-step
// group buys in time. With -gate, the run fails unless the double-hoisted
// path beats per-rotation by the ROADMAP floor (1.5×) on the dense case,
// each path taken at its best sweep point.
func runBenchLinalg(fs *flag.FlagSet, args []string) error {
	logN := fs.Int("logn", 13, "ring degree log2 (slots = 2^(logn-1))")
	out := fs.String("o", "BENCH_linalg.json", "output path ('-' for stdout)")
	gate := fs.Bool("gate", false, "fail unless double-hoisted ≥1.5x per-rotation on the dense case")
	trials := fs.Int("trials", 3, "timing trials per configuration (min is reported)")
	minIters := fs.Int("miniters", 2, "minimum iterations per trial")
	if err := fs.Parse(args); err != nil {
		return err
	}

	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN:     *logN,
		LogQ:     []int{55, 45, 45, 45},
		LogP:     []int{58, 58},
		LogScale: 45,
	})
	if err != nil {
		return err
	}
	n := params.Slots
	level := params.MaxLevel()

	rep := linalgReport{
		GeneratedBy: "poseidon benchlinalg",
		Host:        readHostContext(),
		LogN:        *logN,
		Slots:       n,
		Level:       level,
		Digits:      params.Digits(level),
		Speedups:    map[string]string{},
	}

	kgen := ckks.NewKeyGenerator(params, 42)
	sk := kgen.GenSecretKey()
	rlk := kgen.GenRelinearizationKey(sk)
	pk := kgen.GenPublicKey(sk)
	encr := ckks.NewEncryptor(params, pk, 7)
	enc := ckks.NewEncoder(params)

	rng := rand.New(rand.NewSource(9))
	z := make([]complex128, n)
	for i := range z {
		z[i] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
	}
	ct := encr.Encrypt(enc.Encode(z, level, params.Scale))

	// timeIt reports the best per-trial mean over -trials back-to-back
	// trials, each running at least -miniters iterations (and enough to
	// fill ~500ms, so the fast banded case still averages over many). A
	// single testing.Benchmark pass lands on 1 iteration for the
	// multi-second dense configurations, which let one descheduled run
	// flip the best-n1 selection and the published speedups.
	timeIt := func(f func()) (float64, int) {
		start := time.Now()
		f()
		est := float64(time.Since(start).Nanoseconds())
		n := *minIters
		if k := int(500e6/est) + 1; k > n {
			n = k
		}
		best := math.Inf(1)
		for t := 0; t < *trials; t++ {
			start := time.Now()
			for i := 0; i < n; i++ {
				f()
			}
			if ns := float64(time.Since(start).Nanoseconds()) / float64(n); ns < best {
				best = ns
			}
		}
		return best, n
	}

	// measure times both paths on one transform and appends the results.
	// Key material is provisioned per transform (the sweep changes the
	// rotation set) and released with it.
	measure := func(name string, lt *ckks.LinearTransform) (dh, pr linalgCase) {
		rtk := kgen.GenRotationKeys(sk, lt.Rotations(), false)
		ev := ckks.NewEvaluator(params, rlk, rtk)
		dst := ckks.NewCiphertext(params, lt.Level)

		ev.EvaluateLinearTransformInto(dst, ct, lt) // warm-up: plan, pools, Galois tables
		_, dhStats := ev.EvaluateLinearTransformWithStats(ct, lt)
		ns, iters := timeIt(func() { ev.EvaluateLinearTransformInto(dst, ct, lt) })
		dh = linalgCase{Case: name, Path: "double-hoisted", N1: lt.N1, NsPerOp: ns, Iters: iters, Trials: *trials, Stats: dhStats}

		_, prStats := ev.EvaluateLinearTransformPerRotationWithStats(ct, lt)
		ns, iters = timeIt(func() { ev.EvaluateLinearTransformPerRotation(ct, lt) })
		pr = linalgCase{Case: name, Path: "per-rotation", N1: lt.N1, NsPerOp: ns, Iters: iters, Trials: *trials, Stats: prStats}

		rep.Cases = append(rep.Cases, dh, pr)
		fmt.Fprintf(os.Stderr, "  %-7s n1=%-4d  double-hoisted %12.0f ns/op (%3d ModDowns)   per-rotation %12.0f ns/op (%3d ModDowns)   %.2fx\n",
			name, lt.N1, dh.NsPerOp, dhStats.ModDownSweeps, pr.NsPerOp, prStats.ModDownSweeps, pr.NsPerOp/dh.NsPerOp)
		return dh, pr
	}

	// Dense case: every diagonal populated, swept over the baby-step width.
	dense := make([][]complex128, n)
	for r := range dense {
		row := make([]complex128, n)
		for c := range row {
			row[c] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
		}
		dense[r] = row
	}
	var bestDH, bestPR *linalgCase
	for _, n1 := range []int{32, 64, 128, 256} {
		if n1 > n {
			continue
		}
		lt, err := ckks.NewLinearTransformBSGS(enc, dense, level, params.Scale, n1)
		if err != nil {
			return err
		}
		dh, pr := measure("dense", lt)
		if bestDH == nil || dh.NsPerOp < bestDH.NsPerOp {
			bestDH = &dh
		}
		if bestPR == nil || pr.NsPerOp < bestPR.NsPerOp {
			bestPR = &pr
		}
	}
	rep.DenseBestDH, rep.DenseBestPerRot = *bestDH, *bestPR
	rep.DenseSpeedup = bestPR.NsPerOp / bestDH.NsPerOp
	rep.Speedups[fmt.Sprintf("dense double-hoisted(n1=%d) vs per-rotation(n1=%d)", bestDH.N1, bestPR.N1)] =
		fmt.Sprintf("%.2fx", rep.DenseSpeedup)

	// Banded case: 9 wrap-around diagonals at the default width — the
	// sparse shape where per-group hoisting has the least to amortize.
	banded := make([][]complex128, n)
	for r := range banded {
		banded[r] = make([]complex128, n)
	}
	for _, d := range []int{0, 1, 2, 3, 4, n - 4, n - 3, n - 2, n - 1} {
		for r := 0; r < n; r++ {
			banded[r][(r+d)%n] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
		}
	}
	ltBand, err := ckks.NewLinearTransform(enc, banded, level, params.Scale)
	if err != nil {
		return err
	}
	bandDH, bandPR := measure("banded", ltBand)
	rep.Speedups["banded double-hoisted vs per-rotation"] = fmt.Sprintf("%.2fx", bandPR.NsPerOp/bandDH.NsPerOp)

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if *out == "-" {
		if _, err = os.Stdout.Write(blob); err != nil {
			return err
		}
	} else {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
	for k, v := range rep.Speedups {
		fmt.Fprintf(os.Stderr, "  %-60s %s\n", k, v)
	}

	if *gate {
		const floor = 1.5
		if rep.DenseSpeedup < floor {
			return fmt.Errorf("benchlinalg gate: dense double-hoisted speedup is %.2fx, floor %.1fx", rep.DenseSpeedup, floor)
		}
		fmt.Fprintf(os.Stderr, "PASS benchlinalg gate: dense %.2fx ≥ %.1fx\n", rep.DenseSpeedup, floor)
	}
	return nil
}
