package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"poseidon/internal/ckks"
	"poseidon/internal/telemetry"
	"poseidon/internal/tracing"
)

func init() {
	register("benchtrace", "request-tracing overhead gates (idle sink: 0 allocs/op and ≤1% on the op chain) plus the informational active-trace cost, emitted as JSON", runBenchTrace)
}

// traceOverhead is the paired chain measurement the gate inspects:
// collector-only baseline vs collector+idle-tracing-sink, both sides timed
// back to back inside each trial so machine drift cancels.
type traceOverhead struct {
	BaselineNsPerOp float64 `json:"baseline_ns_per_op"` // collector only
	IdleNsPerOp     float64 `json:"idle_ns_per_op"`     // collector + idle sink
	OverheadPct     float64 `json:"overhead_pct"`
	Trials          int     `json:"trials"` // the median-ratio pair is reported
}

// traceReport is the BENCH_trace.json schema.
type traceReport struct {
	GeneratedBy string `json:"generated_by"`
	LogN        int    `json:"log_n"`
	QLimbs      int    `json:"q_limbs"`
	GOMAXPROCS  int    `json:"gomaxprocs"`

	// IdleChainAllocs is testing.AllocsPerRun over the into-op chain with
	// the tracing sink installed but no request active — the sink must
	// preserve the evaluator's zero-allocation contract exactly.
	IdleChainAllocs float64       `json:"idle_chain_allocs"`
	Overhead        traceOverhead `json:"overhead"`

	// Active-trace cost, informational (not gated): the same chain with a
	// live span tree attached, priced per op span. Tracing a request is
	// allowed to cost — it happens once per sampled request, not on the
	// steady-state path.
	ActiveNsPerOp   float64 `json:"active_ns_per_op"`
	ActiveSpanNs    float64 `json:"active_span_ns_per_op"` // ActiveNsPerOp - IdleNsPerOp, per chain op
	SpansPerRequest int     `json:"spans_per_request"`

	Gate struct {
		Enabled bool    `json:"enabled"`
		MaxPct  float64 `json:"max_pct"`
		Pass    bool    `json:"pass"`
	} `json:"gate"`
}

// runBenchTrace prices the request-tracing layer the same way benchtelemetry
// prices the collector: the evaluator op chain is timed with the tracing
// sink idle (installed, no active request — the steady-state serving
// configuration when a request was not sampled or tracing is off) against a
// collector-only baseline, as the median-ratio pair of back-to-back trials.
// The gate holds the idle sink to at most -maxpct percent overhead and
// exactly zero allocations per op — tracing must be free until a request
// actually carries a span tree. The active-trace cost is measured too, but
// reported informationally: it is paid per sampled request, not per op.
func runBenchTrace(fs *flag.FlagSet, args []string) error {
	logN := fs.Int("logn", 12, "ring degree log2")
	out := fs.String("o", "BENCH_trace.json", "output path ('-' for stdout)")
	gate := fs.Bool("gate", false, "fail unless the idle sink costs 0 allocs/op and at most -maxpct percent")
	maxPct := fs.Float64("maxpct", 1.0, "idle-sink chain overhead limit, percent")
	if err := fs.Parse(args); err != nil {
		return err
	}

	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN:     *logN,
		LogQ:     []int{55, 45, 45, 45, 45, 45},
		LogP:     []int{58, 58},
		LogScale: 45,
		Workers:  1,
	})
	if err != nil {
		return err
	}
	kgen := ckks.NewKeyGenerator(params, 42)
	sk := kgen.GenSecretKey()
	rlk := kgen.GenRelinearizationKey(sk)
	rtk := kgen.GenRotationKeys(sk, []int{1}, true)
	pk := kgen.GenPublicKey(sk)
	encr := ckks.NewEncryptor(params, pk, 7)
	enc := ckks.NewEncoder(params)
	z := make([]complex128, params.Slots)
	for i := range z {
		z[i] = complex(float64(i%17)/17, float64(i%5)/5)
	}
	level := params.MaxLevel()
	ct1 := encr.Encrypt(enc.Encode(z, level, params.Scale))
	ct2 := encr.Encrypt(enc.Encode(z, level, params.Scale))
	ev := ckks.NewEvaluator(params, rlk, rtk)

	// The same into-op chain benchtelemetry gates, so the two overhead
	// figures compose: collector ≤2% over bare, idle sink ≤1% over
	// collector.
	prod := ckks.NewCiphertext(params, level)
	dropped := ckks.NewCiphertext(params, level-1)
	rot := ckks.NewCiphertext(params, level-1)
	acc := ckks.NewCiphertext(params, level-1)
	chain := func() {
		ev.MulRelinInto(prod, ct1, ct2)
		ev.RescaleInto(dropped, prod)
		ev.RotateInto(rot, dropped, 1)
		ev.AddInto(acc, dropped, rot)
	}
	const opsPerChain = 4

	rep := traceReport{
		GeneratedBy: "poseidon benchtrace",
		LogN:        *logN,
		QLimbs:      level + 1,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}

	collector := telemetry.NewCollector("benchtrace")
	tracer := &tracing.Tracer{Recorder: tracing.NewFlightRecorder(64, 1, 0.95)}
	sink := tracing.NewEvalObserver(tracer)

	// (1) Idle sink: installed in the fanout, no active request. This is
	// the configuration every non-sampled request runs under, so it must
	// hold the zero-allocation line.
	ev.SetObserver(ckks.Fanout(collector, sink))
	chain() // warm-up: arena free lists, permutation tables
	rep.IdleChainAllocs = testing.AllocsPerRun(20, chain)
	ev.SetObserver(nil)

	// (2) Idle-sink overhead vs collector-only, median-ratio of paired
	// back-to-back trials exactly as benchtelemetry measures its own cost:
	// drift cancels inside a pair, the median rejects the pair a GC cycle
	// landed in.
	const trials = 7
	timeChain := func(iters int) float64 {
		start := time.Now()
		for i := 0; i < iters; i++ {
			chain()
		}
		return float64(time.Since(start).Nanoseconds()) / float64(iters)
	}
	rep.Overhead.Trials = trials
	ev.SetObserver(collector)
	iters := int(300e6/timeChain(3)) + 1 // ~0.3s per side per trial
	pairs := make([][2]float64, trials)
	for t := range pairs {
		ev.SetObserver(ckks.Fanout(collector, sink))
		traced := timeChain(iters)
		ev.SetObserver(collector)
		pairs[t] = [2]float64{traced, timeChain(iters)}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i][0]/pairs[i][1] < pairs[j][0]/pairs[j][1] })
	med := pairs[trials/2]
	rep.Overhead.IdleNsPerOp, rep.Overhead.BaselineNsPerOp = med[0], med[1]
	rep.Overhead.OverheadPct = 100 * (rep.Overhead.IdleNsPerOp - rep.Overhead.BaselineNsPerOp) / rep.Overhead.BaselineNsPerOp

	// (3) Active trace, informational: every chain iteration runs as one
	// traced request (mint, attach, four op spans, finish, offer) — the
	// full per-sampled-request cost including span allocation.
	ev.SetObserver(ckks.Fanout(collector, sink))
	activeIters := iters / 4
	if activeIters < 1 {
		activeIters = 1
	}
	start := time.Now()
	for i := 0; i < activeIters; i++ {
		rt := tracing.NewRequest(tracing.NewContext(), "benchtrace")
		ex := rt.StartSpan(0, "exec")
		sink.Activate(rt, ex)
		chain()
		sink.Deactivate()
		rt.EndSpan(ex)
		tracer.Offer(rt.Finish(200, nil))
	}
	rep.ActiveNsPerOp = float64(time.Since(start).Nanoseconds()) / float64(activeIters)
	ev.SetObserver(nil)
	rep.ActiveSpanNs = (rep.ActiveNsPerOp - rep.Overhead.IdleNsPerOp) / opsPerChain
	rep.SpansPerRequest = opsPerChain + 2 // root + exec + one span per chain op

	rep.Gate.Enabled = *gate
	rep.Gate.MaxPct = *maxPct
	rep.Gate.Pass = rep.IdleChainAllocs == 0 && rep.Overhead.OverheadPct <= *maxPct

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if *out == "-" {
		if _, err := os.Stdout.Write(blob); err != nil {
			return err
		}
	} else {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
	fmt.Fprintf(os.Stderr, "  idle sink:   %.0f allocs/op, %.0f ns/op vs %.0f ns/op baseline (%+.2f%%)\n",
		rep.IdleChainAllocs, rep.Overhead.IdleNsPerOp, rep.Overhead.BaselineNsPerOp, rep.Overhead.OverheadPct)
	fmt.Fprintf(os.Stderr, "  active trace: %.0f ns/op (~%.0f ns per op span, %d spans/request)\n",
		rep.ActiveNsPerOp, rep.ActiveSpanNs, rep.SpansPerRequest)

	if *gate {
		if rep.IdleChainAllocs != 0 {
			return fmt.Errorf("trace gate: idle sink allocates %.0f allocs/op, want 0", rep.IdleChainAllocs)
		}
		if rep.Overhead.OverheadPct > *maxPct {
			return fmt.Errorf("trace gate: idle sink overhead %.2f%% > %.2f%%", rep.Overhead.OverheadPct, *maxPct)
		}
		fmt.Fprintln(os.Stderr, "  trace gate: PASS")
	}
	return nil
}
