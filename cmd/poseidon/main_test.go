package main

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"poseidon/internal/tracing"
)

// Every registered experiment (except the slow CPU measurement) must run
// without error — the harness stays wired as the models evolve.
func TestAllExperimentsRun(t *testing.T) {
	// Silence the experiment output during the test.
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() {
		os.Stdout = old
		devnull.Close()
	}()

	for _, e := range experiments {
		if e.name == "cpu" || e.name == "benchkernels" || e.name == "benchserve" {
			continue // slow measurement loops; exercised by their own tests/CI steps
		}
		if e.name == "tracereport" {
			continue // requires an input dump; exercised by TestTraceReportConverts
		}
		e := e
		t.Run(e.name, func(t *testing.T) {
			fs := flag.NewFlagSet(e.name, flag.ContinueOnError)
			if err := e.run(fs, nil); err != nil {
				t.Fatalf("%s: %v", e.name, err)
			}
		})
	}
}

func TestExperimentRegistry(t *testing.T) {
	want := []string{
		"table1", "table2", "table3", "table4", "table5", "table6", "table7",
		"table8", "table9", "table10", "table11", "table12",
		"fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "cpu",
	}
	have := map[string]bool{}
	for _, e := range experiments {
		if e.desc == "" {
			t.Errorf("%s: missing description", e.name)
		}
		have[e.name] = true
	}
	for _, name := range want {
		if !have[name] {
			t.Errorf("experiment %s not registered", name)
		}
	}
}

func TestCPUExperimentSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("CPU measurement is slow")
	}
	old := os.Stdout
	devnull, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = devnull
	defer func() {
		os.Stdout = old
		devnull.Close()
	}()
	fs := flag.NewFlagSet("cpu", flag.ContinueOnError)
	for _, e := range experiments {
		if e.name == "cpu" {
			if err := e.run(fs, []string{"-logn", "9", "-limbs", "4", "-reps", "2"}); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// benchserve at a toy scale: the load harness must run end to end and
// emit a well-formed report; the throughput gate is CI's, at full scale.
func TestBenchServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("serving load test is slow")
	}
	old := os.Stdout
	devnull, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = devnull
	defer func() {
		os.Stdout = old
		devnull.Close()
	}()
	out := t.TempDir() + "/BENCH_serve.json"
	fs := flag.NewFlagSet("benchserve", flag.ContinueOnError)
	for _, e := range experiments {
		if e.name == "benchserve" {
			args := []string{"-logn", "8", "-tenants", "8", "-keysets", "2", "-bursts", "2", "-burst", "4", "-o", out}
			if err := e.run(fs, args); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatalf("report not written: %v", err)
	}
}

// tracereport must round-trip a flight-recorder dump into Chrome
// trace_event JSON that a viewer can load.
func TestTraceReportConverts(t *testing.T) {
	rt := tracing.NewRequest(tracing.NewContext(), "unit")
	sp := rt.StartSpan(0, "work")
	rt.EndSpan(sp)
	f := rt.Finish(200, nil)

	dump, err := json.Marshal(map[string]any{"traces": []*tracing.Finished{f}})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	in := filepath.Join(dir, "dump.json")
	out := filepath.Join(dir, "chrome.json")
	if err := os.WriteFile(in, dump, 0o644); err != nil {
		t.Fatal(err)
	}
	fs := flag.NewFlagSet("tracereport", flag.ContinueOnError)
	if err := runTraceReport(fs, []string{"-in", in, "-o", out}); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var chrome struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(blob, &chrome); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	var slices int
	for _, ev := range chrome.TraceEvents {
		if ev["ph"] == "X" {
			slices++
		}
	}
	if slices != 2 {
		t.Fatalf("got %d complete events, want root+work: %v", slices, chrome.TraceEvents)
	}
}
