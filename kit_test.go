package poseidon

import (
	"math"
	"math/cmplx"
	"testing"
)

func testKit(t testing.TB) *Kit {
	t.Helper()
	params, err := NewParameters(ParametersLiteral{
		LogN:     10,
		LogQ:     []int{50, 40, 40, 40},
		LogP:     []int{51, 51},
		LogScale: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	return NewKit(params, 123)
}

func TestKitRoundTrip(t *testing.T) {
	kit := testKit(t)
	in := []complex128{1 + 2i, -0.5, 3.25i, 0}
	out := kit.DecryptValues(kit.EncryptValues(in))
	for i, v := range in {
		if cmplx.Abs(out[i]-v) > 1e-6 {
			t.Errorf("slot %d: %v != %v", i, out[i], v)
		}
	}
}

func TestKitEncryptReals(t *testing.T) {
	kit := testKit(t)
	in := []float64{3.5, -1.25, 0.75}
	out := kit.DecryptValues(kit.EncryptReals(in))
	for i, v := range in {
		if math.Abs(real(out[i])-v) > 1e-6 || math.Abs(imag(out[i])) > 1e-6 {
			t.Errorf("slot %d: %v != %v", i, out[i], v)
		}
	}
}

func TestKitInnerSum(t *testing.T) {
	kit := testKit(t)
	n := 16
	vals := make([]float64, n)
	want := 0.0
	for i := range vals {
		vals[i] = float64(i+1) * 0.125
		want += vals[i]
	}
	ct := kit.EncryptReals(vals)
	sum := kit.InnerSum(ct, n)
	got := real(kit.DecryptValues(sum)[0])
	if math.Abs(got-want) > 1e-5 {
		t.Errorf("InnerSum=%.6f want %.6f", got, want)
	}
}

func TestKitInnerSumPanicsOnBadWidth(t *testing.T) {
	kit := testKit(t)
	ct := kit.EncryptReals([]float64{1, 2, 3})
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two width should panic")
		}
	}()
	kit.InnerSum(ct, 3)
}

func TestPublicAPIModelFlow(t *testing.T) {
	model, err := NewModel(U280(), PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	rep := Simulate(model, DefaultEnergy(), BenchmarkPackedBoot(PaperWorkloadSpec()))
	if rep.TotalTime <= 0 || rep.TotalEnergy <= 0 {
		t.Error("simulation should produce positive totals")
	}
	// Paper ballpark: packed bootstrapping ~127 ms; accept a 3× band.
	ms := rep.TotalTime * 1e3
	if ms < 127.0/3 || ms > 127.0*3 {
		t.Errorf("packed bootstrapping %.1f ms, outside the paper's 127 ms ×3 band", ms)
	}
}

func TestPublicAPIEndToEndMultiply(t *testing.T) {
	kit := testKit(t)
	a := []float64{1.5, -2, 0.5}
	ct := kit.EncryptReals(a)
	sq := kit.Eval.Rescale(kit.Eval.MulRelin(ct, ct))
	out := kit.DecryptValues(sq)
	for i, v := range a {
		if math.Abs(real(out[i])-v*v) > 1e-4 {
			t.Errorf("slot %d: %.6f != %.6f", i, real(out[i]), v*v)
		}
	}
}
