package poseidon

import (
	"testing"

	"poseidon/internal/trace"
)

// Running a real FHE program under a recorder must produce a priceable
// trace whose op mix matches the program.
func TestTraceRecorderCapturesProgram(t *testing.T) {
	params, err := NewParameters(ParametersLiteral{
		LogN:     10,
		LogQ:     []int{50, 40, 40, 40},
		LogP:     []int{51, 51},
		LogScale: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	kit := NewKit(params, 600)
	rec := NewTraceRecorder("recorded-inference")
	kit.Eval.SetObserver(rec)

	rec.SetPhase("score")
	ct := kit.EncryptReals([]float64{1, 2, 3, 4})
	prod := kit.Eval.Rescale(kit.Eval.MulRelin(ct, ct)) // CMult + Rescale
	sum := kit.InnerSum(prod, 4)                        // 2 rotations + 2 adds
	rec.SetPhase("finish")
	_ = kit.Eval.AddConst(sum, 1) // HAddPlain

	tr := rec.Trace()
	counts := tr.CountByKind()
	if counts[trace.CMult] != 1 {
		t.Errorf("CMult count %v want 1", counts[trace.CMult])
	}
	if counts[trace.Rescale] != 1 {
		t.Errorf("Rescale count %v want 1", counts[trace.Rescale])
	}
	if counts[trace.Rotation] != 2 {
		t.Errorf("Rotation count %v want 2", counts[trace.Rotation])
	}
	if counts[trace.HAdd] != 2 {
		t.Errorf("HAdd count %v want 2", counts[trace.HAdd])
	}
	if counts[trace.HAddPlain] != 1 {
		t.Errorf("HAddPlain count %v want 1", counts[trace.HAddPlain])
	}

	// Levels recorded as limbs = level+1: the CMult ran at the top level.
	for _, op := range tr.Ops {
		if op.Kind == trace.CMult && op.Limbs != params.MaxLevel()+1 {
			t.Errorf("CMult recorded at %d limbs, want %d", op.Limbs, params.MaxLevel()+1)
		}
	}

	// And the trace prices on the accelerator.
	secs, err := PriceRecorded(rec, U280(), PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	if secs <= 0 {
		t.Error("priced time must be positive")
	}
}

// Unknown op names must be counted on the drop counter, not silently lost,
// and must not enter the priced trace.
func TestTraceRecorderDropped(t *testing.T) {
	rec := NewTraceRecorder("drops")
	rec.Observe("CMult", 3)
	rec.Observe("NotAnOp", 3)
	rec.Observe("AlsoNotAnOp", 2)
	if got := rec.Dropped(); got != 2 {
		t.Fatalf("Dropped() = %d, want 2", got)
	}
	counts := rec.Trace().CountByKind()
	var total float64
	for _, n := range counts {
		total += n
	}
	if counts[trace.CMult] != 1 || total != 1 {
		t.Fatalf("trace counts = %v, want exactly one CMult", counts)
	}
}

// The recorder's phase labels must flow through to the simulator report.
func TestTraceRecorderPhases(t *testing.T) {
	params, err := NewParameters(ParametersLiteral{
		LogN:     10,
		LogQ:     []int{50, 40},
		LogP:     []int{51},
		LogScale: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	kit := NewKit(params, 601)
	rec := NewTraceRecorder("phased")
	kit.Eval.SetObserver(rec)

	ct := kit.EncryptReals([]float64{1})
	rec.SetPhase("alpha")
	_ = kit.Eval.Add(ct, ct)
	rec.SetPhase("beta")
	_ = kit.Eval.Add(ct, ct)
	_ = kit.Eval.Add(ct, ct)

	model, err := NewModel(U280(), PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	rep := Simulate(model, DefaultEnergy(), rec.Trace())
	if rep.ByTag["beta"] <= rep.ByTag["alpha"] {
		t.Errorf("beta (2 ops) should out-cost alpha (1 op): %v", rep.ByTag)
	}
}

// CaptureArena must snapshot the evaluator arena into the trace's memory
// profile, and the profile must flow through to the simulator report.
func TestTraceRecorderCaptureArena(t *testing.T) {
	params, err := NewParameters(ParametersLiteral{
		LogN:     10,
		LogQ:     []int{50, 40},
		LogP:     []int{51},
		LogScale: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	kit := NewKit(params, 602)
	rec := NewTraceRecorder("arena")
	kit.Eval.SetObserver(rec)

	ct := kit.EncryptReals([]float64{1, 2, 3})
	_ = kit.Eval.Rescale(kit.Eval.MulRelin(ct, ct))
	rec.CaptureArena(params)
	rec.SetHeapStats(0, 0)

	tr := rec.Trace()
	if tr.Mem == nil || tr.Mem.PeakArenaBytes == 0 || tr.Mem.ArenaBytes < tr.Mem.PeakArenaBytes {
		t.Fatalf("arena capture: %+v", tr.Mem)
	}
	model, err := NewModel(U280(), PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	rep := Simulate(model, DefaultEnergy(), tr)
	if rep.Mem == nil || rep.Mem.PeakArenaBytes != tr.Mem.PeakArenaBytes {
		t.Fatalf("report did not surface the memory profile: %+v", rep.Mem)
	}
}
