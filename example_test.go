package poseidon_test

import (
	"fmt"

	"poseidon"
)

// Encrypt two vectors, add them homomorphically, decrypt.
func Example() {
	params, err := poseidon.NewParameters(poseidon.ParametersLiteral{
		LogN:     10,
		LogQ:     []int{50, 40, 40},
		LogP:     []int{51, 51},
		LogScale: 40,
	})
	if err != nil {
		panic(err)
	}
	kit := poseidon.NewKit(params, 42)

	ct1 := kit.EncryptReals([]float64{1, 2, 3})
	ct2 := kit.EncryptReals([]float64{10, 20, 30})
	sum := kit.Eval.Add(ct1, ct2)

	vals := kit.DecryptValues(sum)
	fmt.Printf("%.1f %.1f %.1f\n", real(vals[0]), real(vals[1]), real(vals[2]))
	// Output: 11.0 22.0 33.0
}

// Price an FHE workload on the modeled accelerator.
func ExampleSimulate() {
	model, err := poseidon.NewModel(poseidon.U280(), poseidon.PaperParams())
	if err != nil {
		panic(err)
	}
	rep := poseidon.Simulate(model, poseidon.DefaultEnergy(),
		poseidon.BenchmarkPackedBoot(poseidon.PaperWorkloadSpec()))
	fmt.Printf("packed bootstrapping: %d ms\n", int(rep.TotalTime*1e3))
	// Output: packed bootstrapping: 111 ms
}

// Homomorphic squaring with relinearization and rescale.
func ExampleKit_EncryptReals() {
	params, err := poseidon.NewParameters(poseidon.ParametersLiteral{
		LogN:     10,
		LogQ:     []int{50, 40, 40},
		LogP:     []int{51, 51},
		LogScale: 40,
	})
	if err != nil {
		panic(err)
	}
	kit := poseidon.NewKit(params, 7)
	ct := kit.EncryptReals([]float64{3, -4})
	sq := kit.Eval.Rescale(kit.Eval.MulRelin(ct, ct))
	vals := kit.DecryptValues(sq)
	fmt.Printf("%.1f %.1f\n", real(vals[0]), real(vals[1]))
	// Output: 9.0 16.0
}
