package poseidon

import (
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
)

// Running the integration workload under telemetry and scraping the live
// /metrics endpoint must surface a latency histogram for every basic-op
// kind the workload executes — the end-to-end contract of the telemetry
// layer: evaluator spans → collector → Prometheus exposition over HTTP.
func TestMetricsEndpointServesWorkloadOps(t *testing.T) {
	params, err := NewParameters(ParametersLiteral{
		LogN:     10,
		LogQ:     []int{50, 40, 40, 40, 40, 40},
		LogP:     []int{51, 51},
		LogScale: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	kit := NewKit(params, 700)
	collector := kit.EnableTelemetry("integration")
	if kit.Metrics() != collector {
		t.Fatal("Metrics() must return the installed collector")
	}
	if again := kit.EnableTelemetry("other"); again != collector {
		t.Fatal("double EnableTelemetry must return the existing collector")
	}

	// The integration workload: EvalPoly 2x²−x (PMult, CMult, Rescale,
	// HAdd/HAddPlain), an 8-wide InnerSum (Rotation + HAdd) and a
	// conjugation (Rotation).
	ct := kit.EncryptReals([]float64{0.25, -1.5, 2.0, 0.75})
	_ = kit.Eval.EvalPoly(ct, []float64{0, -1, 2})
	vals := kit.EncryptValues([]complex128{1, 2i, 3, 4i, 5, 6i, 7, 8i})
	sum := kit.InnerSum(vals, 8)
	_ = kit.Eval.Conjugate(sum)

	srv, err := StartMetricsServer("127.0.0.1:0", collector)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	// Every kind the workload executed must serve a non-empty summary.
	for _, op := range []string{"HAdd", "PMult", "CMult", "Rescale", "Rotation"} {
		re := regexp.MustCompile(
			`poseidon_op_latency_seconds_count\{workload="integration",op="` + op + `",limbs="\d+"\} ([1-9]\d*)`)
		if !re.MatchString(body) {
			t.Errorf("/metrics has no %s latency samples:\n%s", op, body)
		}
		if !strings.Contains(body, `op="`+op+`",limbs=`) ||
			!strings.Contains(body, `quantile="0.99"`) {
			t.Errorf("/metrics missing %s quantile series", op)
		}
	}

	// The scrape must agree with the collector's own snapshot.
	snap := collector.Snapshot()
	if len(snap.Keys) == 0 {
		t.Fatal("collector snapshot is empty after the workload")
	}
	for _, ks := range snap.Keys {
		if ks.Count > 0 && !strings.Contains(body, `op="`+ks.Op+`"`) {
			t.Errorf("collector has %s but /metrics does not", ks.Op)
		}
	}

	// expvar rides along on the same endpoint.
	vresp, err := http.Get("http://" + srv.Addr() + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer vresp.Body.Close()
	vraw, _ := io.ReadAll(vresp.Body)
	if !strings.Contains(string(vraw), "poseidon_telemetry") {
		t.Error("/debug/vars missing poseidon_telemetry")
	}

	// Disabling restores the pre-telemetry observer and stops collection.
	kit.DisableTelemetry()
	if kit.Metrics() != nil {
		t.Fatal("Metrics() must be nil after DisableTelemetry")
	}
	before := len(collector.Snapshot().Keys)
	_ = kit.Eval.Add(ct, ct)
	if after := len(collector.Snapshot().Keys); after != before {
		t.Error("detached collector still receiving observations")
	}
}
