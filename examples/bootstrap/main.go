// Bootstrap: refresh an exhausted ciphertext with packed bootstrapping —
// ModRaise → CoeffToSlot → EvalMod (scaled sine) → SlotToCoeff — then keep
// computing on the refreshed ciphertext. This is the paper's headline
// "even the expensive bootstrapping" capability, at functional scale.
package main

import (
	"fmt"
	"log"
	"math"
	"math/cmplx"

	"poseidon"
)

func main() {
	// A long chain: bootstrapping consumes ~20 levels internally.
	logQ := []int{55}
	for i := 0; i < 27; i++ {
		logQ = append(logQ, 45)
	}
	params, err := poseidon.NewParameters(poseidon.ParametersLiteral{
		LogN:     9,
		LogQ:     logQ,
		LogP:     []int{52, 52, 52, 52, 52},
		LogScale: 45,
	})
	if err != nil {
		log.Fatal(err)
	}

	enc := poseidon.NewEncoder(params)
	kgen := poseidon.NewKeyGenerator(params, 5)
	sk := kgen.GenSecretKey()
	pk := kgen.GenPublicKey(sk)
	encr := poseidon.NewEncryptor(params, pk, 6)
	decr := poseidon.NewDecryptor(params, sk)

	fmt.Println("building bootstrapper (DFT transforms + rotation keys)...")
	boot, err := poseidon.NewBootstrapper(params, enc, kgen, sk, poseidon.BootstrapConfig{K: 28})
	if err != nil {
		log.Fatal(err)
	}

	// A message at level 0: no multiplications left.
	msg := make([]complex128, params.Slots)
	for i := range msg {
		msg[i] = complex(math.Sin(float64(i)*0.05), math.Cos(float64(i)*0.11)) * 0.5
	}
	pt := enc.Encode(msg, 0, params.Scale)
	ct := encr.Encrypt(pt)
	fmt.Printf("before bootstrap: level %d (exhausted)\n", ct.Level)

	refreshed, err := boot.Bootstrap(ct)
	if err != nil {
		log.Fatal(err)
	}
	worst := 0.0
	for i, v := range enc.Decode(decr.Decrypt(refreshed)) {
		if e := cmplx.Abs(v - msg[i]); e > worst {
			worst = e
		}
	}
	fmt.Printf("after bootstrap:  level %d, max slot error %.2e (~%.1f bits)\n",
		refreshed.Level, worst, -math.Log2(worst))

	// The refreshed ciphertext supports further multiplication.
	ev := boot.Evaluator()
	sq := ev.Rescale(ev.MulRelin(refreshed, refreshed))
	worst = 0
	for i, v := range enc.Decode(decr.Decrypt(sq)) {
		if e := cmplx.Abs(v - msg[i]*msg[i]); e > worst {
			worst = e
		}
	}
	fmt.Printf("post-refresh squaring works: level %d, max error %.2e\n", sq.Level, worst)

	// The accelerator model prices the full-scale version of this pipeline.
	model, err := poseidon.NewModel(poseidon.U280(), poseidon.PaperParams())
	if err != nil {
		log.Fatal(err)
	}
	rep := poseidon.Simulate(model, poseidon.DefaultEnergy(),
		poseidon.BenchmarkPackedBoot(poseidon.PaperWorkloadSpec()))
	fmt.Printf("\nmodeled packed bootstrapping at N=2^16 on the U280: %.1f ms (paper: 127.45 ms)\n",
		rep.TotalTime*1e3)
}
