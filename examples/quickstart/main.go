// Quickstart: encrypt two vectors, compute (a+b)·a homomorphically, and
// decrypt — the smallest end-to-end tour of the public API.
package main

import (
	"fmt"
	"log"

	"poseidon"
)

func main() {
	params, err := poseidon.NewParameters(poseidon.ParametersLiteral{
		LogN:     11,
		LogQ:     []int{50, 40, 40, 40},
		LogP:     []int{51, 51},
		LogScale: 40,
	})
	if err != nil {
		log.Fatal(err)
	}
	kit := poseidon.NewKit(params, 2024)

	a := []float64{1.5, -2.0, 3.25, 0.5}
	b := []float64{0.5, 4.0, -1.25, 2.5}

	ctA := kit.EncryptReals(a)
	ctB := kit.EncryptReals(b)

	// (a + b) ⊙ a, all under encryption.
	sum := kit.Eval.Add(ctA, ctB)
	prod := kit.Eval.MulRelin(sum, ctA)
	prod = kit.Eval.Rescale(prod)

	got := kit.DecryptValues(prod)
	fmt.Println("slot  (a+b)*a   decrypted")
	for i := range a {
		want := (a[i] + b[i]) * a[i]
		fmt.Printf("%4d  %8.4f   %8.4f\n", i, want, real(got[i]))
	}

	// The same computation priced on the Poseidon accelerator model.
	model, err := poseidon.NewModel(poseidon.U280(), poseidon.PaperParams())
	if err != nil {
		log.Fatal(err)
	}
	limbs := poseidon.PaperParams().Limbs
	t := model.Latency(model.HAdd(limbs)) + model.Latency(model.CMult(limbs)) +
		model.Latency(model.Rescale(limbs))
	fmt.Printf("\non the modeled U280 accelerator (N=2^16, L=44) this takes %.3f ms\n", t*1e3)
}
