// Similarity: encrypted cosine-similarity scoring between a private query
// vector and a private database vector — the rotate-and-sum inner-product
// pattern that drives the Rotation/Keyswitch operators the paper
// accelerates (the "federated learning" style workload of its intro).
package main

import (
	"fmt"
	"log"
	"math"

	"poseidon"
)

const dim = 64 // feature dimension (power of two for rotate-and-sum)

func main() {
	params, err := poseidon.NewParameters(poseidon.ParametersLiteral{
		LogN:     11,
		LogQ:     []int{50, 40, 40, 40},
		LogP:     []int{51, 51},
		LogScale: 40,
	})
	if err != nil {
		log.Fatal(err)
	}
	kit := poseidon.NewKit(params, 7)

	// Two normalized embedding vectors, owned by different parties.
	query := unitVector(0.3)
	doc := unitVector(0.8)
	wantSim := dot(query, doc)

	ctQ := kit.EncryptReals(query)
	ctD := kit.EncryptReals(doc)

	// Element-wise product then a log2(dim)-step rotate-and-sum: slot 0 of
	// the result holds the inner product.
	prod := kit.Eval.Rescale(kit.Eval.MulRelin(ctQ, ctD))
	sum := kit.InnerSum(prod, dim)

	got := real(kit.DecryptValues(sum)[0])
	fmt.Printf("cosine similarity: plaintext %.6f, encrypted %.6f (error %.2e)\n",
		wantSim, got, math.Abs(wantSim-got))

	// Accelerator cost of the scoring pipeline: 1 CMult + 1 Rescale +
	// log2(dim) rotations + adds.
	model, err := poseidon.NewModel(poseidon.U280(), poseidon.PaperParams())
	if err != nil {
		log.Fatal(err)
	}
	limbs := 14 // a realistic working level for inference
	steps := int(math.Log2(dim))
	t := model.Latency(model.CMult(limbs)) + model.Latency(model.Rescale(limbs))
	for i := 0; i < steps; i++ {
		t += model.Latency(model.Rotation(limbs)) + model.Latency(model.HAdd(limbs))
	}
	fmt.Printf("modeled accelerator latency per score: %.3f ms (%d rotations)\n", t*1e3, steps)
}

func unitVector(phase float64) []float64 {
	v := make([]float64, dim)
	norm := 0.0
	for i := range v {
		v[i] = math.Sin(phase + float64(i)*0.37)
		norm += v[i] * v[i]
	}
	norm = math.Sqrt(norm)
	for i := range v {
		v[i] /= norm
	}
	return v
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
