// Matrix: encrypted matrix-vector multiplication with the BSGS diagonal
// method — the linear-transform primitive behind CoeffToSlot/SlotToCoeff
// and every encrypted neural-network layer (the LSTM benchmark's
// y ← σ(W·y) step at laptop scale).
package main

import (
	"fmt"
	"log"
	"math"

	"poseidon"
)

func main() {
	params, err := poseidon.NewParameters(poseidon.ParametersLiteral{
		LogN:     9,
		LogQ:     []int{50, 40, 40, 40},
		LogP:     []int{51, 51},
		LogScale: 40,
	})
	if err != nil {
		log.Fatal(err)
	}
	n := params.Slots // the transform works on the full slot vector

	// A random-ish test matrix and vector.
	m := make([][]complex128, n)
	for r := range m {
		m[r] = make([]complex128, n)
		// Banded matrix: a realistic sparse-diagonal structure.
		for _, d := range []int{0, 1, 2, n - 1} {
			c := (r + d) % n
			m[r][c] = complex(math.Sin(float64(r*7+c)*0.13), 0)
		}
	}
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(math.Cos(float64(i)*0.29), 0)
	}

	// Plaintext reference.
	want := make([]complex128, n)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			want[r] += m[r][c] * x[c]
		}
	}

	// Keys: the transform reports which rotations it needs.
	enc := poseidon.NewEncoder(params)
	lt, err := poseidon.NewLinearTransform(enc, m, params.MaxLevel(), float64(params.Q[params.MaxLevel()]))
	if err != nil {
		log.Fatal(err)
	}
	kgen := poseidon.NewKeyGenerator(params, 17)
	sk := kgen.GenSecretKey()
	pk := kgen.GenPublicKey(sk)
	rtks := kgen.GenRotationKeys(sk, lt.Rotations(), false)
	rlk := kgen.GenRelinearizationKey(sk)
	ev := poseidon.NewEvaluator(params, rlk, rtks)
	encr := poseidon.NewEncryptor(params, pk, 18)
	decr := poseidon.NewDecryptor(params, sk)

	ct := encr.Encrypt(enc.Encode(x, params.MaxLevel(), params.Scale))
	out := ev.Rescale(ev.EvaluateLinearTransform(ct, lt))
	got := enc.Decode(decr.Decrypt(out))

	worst := 0.0
	for i := range want {
		if e := realAbs(got[i] - want[i]); e > worst {
			worst = e
		}
	}
	fmt.Printf("encrypted %dx%d matrix-vector product\n", n, n)
	fmt.Printf("rotations used: %d (BSGS over %d nonzero diagonals)\n", len(lt.Rotations()), 4)
	fmt.Printf("max slot error: %.2e\n", worst)
	fmt.Printf("sample: want %.5f, got %.5f\n", real(want[0]), real(got[0]))
}

func realAbs(c complex128) float64 {
	re, im := real(c), imag(c)
	return math.Hypot(re, im)
}
