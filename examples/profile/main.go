// Profile: write an FHE program once, run it functionally, and price the
// recorded operation trace on different Poseidon design points — the
// record-then-simulate flow that connects the cryptographic library to the
// accelerator model.
package main

import (
	"fmt"
	"log"

	"poseidon"
)

func main() {
	params, err := poseidon.NewParameters(poseidon.ParametersLiteral{
		LogN:     10,
		LogQ:     []int{50, 40, 40, 40},
		LogP:     []int{51, 51},
		LogScale: 40,
	})
	if err != nil {
		log.Fatal(err)
	}
	kit := poseidon.NewKit(params, 314)

	// Instrument the evaluator and stamp the trace with its worker count so
	// downstream reports know which execution engine produced it.
	rec := poseidon.NewTraceRecorder("weighted-score")
	rec.SetWorkers(kit.Workers())
	kit.Eval.SetObserver(rec)

	// The program: a weighted score with a rotate-and-sum reduction.
	rec.SetPhase("inner-product")
	x := kit.EncryptReals([]float64{0.2, -0.7, 1.1, 0.4, -0.3, 0.9, 0.1, -0.5})
	w := kit.Enc.EncodeReal([]float64{1, 2, -1, 0.5, 3, -2, 1.5, 0.25},
		params.MaxLevel(), params.Scale)
	score := kit.Eval.Rescale(kit.Eval.MulPlain(x, w))
	score = kit.InnerSum(score, 8)
	rec.SetPhase("activation")
	act := kit.Eval.Rescale(kit.Eval.MulRelin(score, score))

	fmt.Printf("functional result (x·w)² = %.4f\n",
		real(kit.DecryptValues(act)[0]))

	// Price the recorded trace across design points.
	tr := rec.Trace()
	fmt.Printf("\nrecorded %d basic operations; modeled cost at N=2^16, L=44:\n", len(tr.Ops))
	em := poseidon.DefaultEnergy()
	for _, pt := range []struct {
		name string
		cfg  poseidon.Config
	}{
		{"U280, 512 lanes, HFAuto", poseidon.U280()},
		{"U280, 128 lanes", withLanes(poseidon.U280(), 128)},
		{"U280, naive automorphism", withNaive(poseidon.U280())},
		{"SmartSSD (near-data)", poseidon.SmartSSD()},
	} {
		model, err := poseidon.NewModel(pt.cfg, poseidon.PaperParams())
		if err != nil {
			log.Fatal(err)
		}
		rep := poseidon.Simulate(model, em, tr)
		fmt.Printf("  %-28s %8.3f ms   %.3g J\n", pt.name, rep.TotalTime*1e3, rep.TotalEnergy)
	}
}

func withLanes(c poseidon.Config, lanes int) poseidon.Config {
	c.Lanes = lanes
	return c
}

func withNaive(c poseidon.Config) poseidon.Config {
	c.Auto = poseidon.NaiveAutoCore
	return c
}
