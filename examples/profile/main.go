// Profile: write an FHE program once, run it functionally under live
// telemetry, and price the recorded operation trace on different Poseidon
// design points — the observe → export → calibrate loop that connects the
// cryptographic library to the accelerator model.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"poseidon"
)

func main() {
	params, err := poseidon.NewParameters(poseidon.ParametersLiteral{
		LogN:     10,
		LogQ:     []int{50, 40, 40, 40},
		LogP:     []int{51, 51},
		LogScale: 40,
	})
	if err != nil {
		log.Fatal(err)
	}
	kit := poseidon.NewKit(params, 314)

	// Telemetry measures each op's wall time; the recorder captures the op
	// sequence for accelerator pricing. EnableTelemetry fans out to both.
	rec := poseidon.NewTraceRecorder("weighted-score")
	rec.SetWorkers(kit.Workers())
	kit.Eval.SetObserver(rec)
	collector := kit.EnableTelemetry("weighted-score")

	// The program: a weighted score with a rotate-and-sum reduction.
	rec.SetPhase("inner-product")
	x := kit.EncryptReals([]float64{0.2, -0.7, 1.1, 0.4, -0.3, 0.9, 0.1, -0.5})
	w := kit.Enc.EncodeReal([]float64{1, 2, -1, 0.5, 3, -2, 1.5, 0.25},
		params.MaxLevel(), params.Scale)
	score := kit.Eval.Rescale(kit.Eval.MulPlain(x, w))
	score = kit.InnerSum(score, 8)
	rec.SetPhase("activation")
	act := kit.Eval.Rescale(kit.Eval.MulRelin(score, score))

	fmt.Printf("functional result (x·w)² = %.4f\n",
		real(kit.DecryptValues(act)[0]))

	// What the telemetry layer saw: the Prometheus exposition a /metrics
	// scrape would serve (poseidon.StartMetricsServer mounts it over HTTP).
	fmt.Println("\nmeasured op latencies (Prometheus text format, excerpt):")
	var prom strings.Builder
	collector.Snapshot().WritePrometheus(&prom)
	for _, line := range strings.Split(prom.String(), "\n") {
		if strings.HasPrefix(line, "poseidon_op_total") ||
			strings.Contains(line, `quantile="0.99"`) {
			fmt.Println("  " + line)
		}
	}

	// Price the recorded trace across design points.
	tr := rec.Trace()
	fmt.Printf("\nrecorded %d basic operations; modeled cost at N=2^16, L=44:\n", len(tr.Ops))
	em := poseidon.DefaultEnergy()
	for _, pt := range []struct {
		name string
		cfg  poseidon.Config
	}{
		{"U280, 512 lanes, HFAuto", poseidon.U280()},
		{"U280, 128 lanes", withLanes(poseidon.U280(), 128)},
		{"U280, naive automorphism", withNaive(poseidon.U280())},
		{"SmartSSD (near-data)", poseidon.SmartSSD()},
	} {
		model, err := poseidon.NewModel(pt.cfg, poseidon.PaperParams())
		if err != nil {
			log.Fatal(err)
		}
		rep := poseidon.Simulate(model, em, tr)
		fmt.Printf("  %-28s %8.3f ms   %.3g J\n", pt.name, rep.TotalTime*1e3, rep.TotalEnergy)
	}

	// Calibrate: join the measured wall times with the U280 model's
	// predictions — the per-kind ratio is this machine's distance from the
	// modeled accelerator.
	model, err := poseidon.NewModel(poseidon.U280(), poseidon.PaperParams())
	if err != nil {
		log.Fatal(err)
	}
	calib := poseidon.Calibrate(collector.Snapshot(), model)
	fmt.Println("\nmeasured vs modeled (U280 design point):")
	fmt.Fprintf(os.Stdout, "  %-10s %6s %12s %12s %8s\n", "op", "count", "measured", "modeled", "ratio")
	for _, kc := range calib.PerKind {
		fmt.Printf("  %-10s %6d %10.3gs %10.3gs %8.1f\n",
			kc.Name, kc.Count, kc.MeasuredSec, kc.ModeledSec, kc.Ratio)
	}
	fmt.Printf("  drift: geomean %.1f× (min %.1f×, max %.1f×)\n",
		calib.GeomeanRatio, calib.MinRatio, calib.MaxRatio)
}

func withLanes(c poseidon.Config, lanes int) poseidon.Config {
	c.Lanes = lanes
	return c
}

func withNaive(c poseidon.Config) poseidon.Config {
	c.Auto = poseidon.NaiveAutoCore
	return c
}
