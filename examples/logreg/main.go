// Logreg: encrypted logistic-regression inference — the HELR-style workload
// of the paper's LR benchmark, shrunk to laptop scale. The server scores an
// encrypted feature vector against a plaintext model: inner product via
// rotate-and-sum, then a degree-3 polynomial sigmoid, all under encryption.
package main

import (
	"fmt"
	"log"
	"math"

	"poseidon"
)

const features = 32

func main() {
	params, err := poseidon.NewParameters(poseidon.ParametersLiteral{
		LogN:     11,
		LogQ:     []int{50, 40, 40, 40, 40, 40},
		LogP:     []int{51, 51},
		LogScale: 40,
	})
	if err != nil {
		log.Fatal(err)
	}
	kit := poseidon.NewKit(params, 99)
	ev := kit.Eval

	// A trained (plaintext) model and a private patient record.
	weights := make([]float64, features)
	record := make([]float64, features)
	for i := 0; i < features; i++ {
		weights[i] = 0.15 * math.Cos(float64(i)*0.7)
		record[i] = math.Sin(float64(i) * 0.31)
	}
	bias := -0.2

	ct := kit.EncryptReals(record)

	// Inner product w·x: plaintext multiply then rotate-and-sum.
	wPT := kit.Enc.EncodeReal(weights, ct.Level, params.Scale)
	z := ev.Rescale(ev.MulPlain(ct, wPT))
	z = kit.InnerSum(z, features)
	z = ev.AddConst(z, complex(bias, 0))

	// Degree-3 sigmoid approximation on [-4, 4]:
	// σ(t) ≈ 0.5 + 0.197·t − 0.004·t³ (the HELR polynomial).
	t2 := ev.Rescale(ev.MulRelin(z, z))                          // t²
	t3 := ev.Rescale(ev.MulRelin(t2, ev.DropLevel(z, t2.Level))) // t³
	term3 := ev.Rescale(ev.MulConst(t3, -0.004))
	// Align the linear term's scale and level with the cubic term.
	term1 := ev.MulConstToScale(ev.DropLevel(z, term3.Level+1), 0.197, term3.Scale)
	score := ev.Add(term1, term3)
	score = ev.AddConst(score, 0.5)

	got := real(kit.DecryptValues(score)[0])

	// Plaintext reference.
	zRef := bias
	for i := range weights {
		zRef += weights[i] * record[i]
	}
	sigRef := 0.5 + 0.197*zRef - 0.004*zRef*zRef*zRef

	fmt.Printf("logit (plaintext):        %.6f\n", zRef)
	fmt.Printf("sigmoid poly (plaintext): %.6f\n", sigRef)
	fmt.Printf("sigmoid poly (encrypted): %.6f\n", got)
	fmt.Printf("absolute error:           %.2e\n", math.Abs(got-sigRef))
	fmt.Printf("true sigmoid:             %.6f\n", 1/(1+math.Exp(-zRef)))
}
