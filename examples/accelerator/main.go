// Accelerator: explore the Poseidon design space — sweep the NTT fusion
// degree, the lane count and the automorphism core design, and watch the
// paper's tradeoffs (k=3 inflection, bandwidth-wall saturation, the
// HFAuto/naive latency-resource flip) fall out of the model.
package main

import (
	"fmt"
	"log"

	"poseidon"
)

func main() {
	fmt.Println("--- NTT fusion-degree sweep (Fig 10) ---")
	cr := poseidon.NewCoreResources(poseidon.U280(), 16)
	fmt.Printf("%3s %10s %8s %14s\n", "k", "LUT", "DSP", "NTT time (us)")
	for k := 1; k <= 6; k++ {
		r := cr.NTTCoresAtK(k)
		fmt.Printf("%3d %10d %8d %14.3f\n", k, r.LUT, r.DSP, cr.NTTTimeAtK(k))
	}
	fmt.Println("→ both resources and time bottom out at k = 3, the paper's choice")

	fmt.Println("\n--- lane scaling on CMult (Fig 11) ---")
	limbs := poseidon.PaperParams().Limbs
	fmt.Printf("%6s %14s %12s\n", "lanes", "CMult (ms)", "HAdd (ms)")
	for _, lanes := range []int{64, 128, 256, 512} {
		cfg := poseidon.U280()
		cfg.Lanes = lanes
		m, err := poseidon.NewModel(cfg, poseidon.PaperParams())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d %14.3f %12.3f\n", lanes,
			m.Latency(m.CMult(limbs))*1e3, m.Latency(m.HAdd(limbs))*1e3)
	}
	fmt.Println("→ compute-bound CMult keeps scaling; HAdd hits the HBM wall early")

	fmt.Println("\n--- automorphism core ablation (Tables VIII/IX) ---")
	for _, kind := range []poseidon.AutoKind{poseidon.NaiveAutoCore, poseidon.HFAutoCore} {
		cfg := poseidon.U280()
		cfg.Auto = kind
		m, err := poseidon.NewModel(cfg, poseidon.PaperParams())
		if err != nil {
			log.Fatal(err)
		}
		rep := poseidon.Simulate(m, poseidon.DefaultEnergy(),
			poseidon.BenchmarkResNet20(poseidon.PaperWorkloadSpec()))
		fmt.Printf("%8s: ResNet-20 takes %8.1f ms\n", kind, rep.TotalTime*1e3)
	}
	fmt.Println("→ HFAuto trades LUTs for an order-of-magnitude automorphism speedup")
}
