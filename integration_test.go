package poseidon

import (
	"math"
	"math/cmplx"
	"testing"
)

// A full client-server round trip over the wire format: the client encodes
// and encrypts, serializes the ciphertext; the server deserializes,
// computes (without any key material beyond evaluation keys), serializes
// the result; the client decrypts. This is the deployment flow the paper's
// Fig 1 describes.
func TestClientServerFlow(t *testing.T) {
	params, err := NewParameters(ParametersLiteral{
		LogN:     10,
		LogQ:     []int{50, 40, 40, 40, 40, 40},
		LogP:     []int{51, 51},
		LogScale: 40,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Client side: keys and encryption.
	client := NewKit(params, 500)
	record := []float64{0.25, -1.5, 2.0, 0.75}
	ct := client.EncryptReals(record)
	wire, err := ct.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	// Server side: only public evaluation keys.
	serverEval := NewEvaluator(params, client.RLK, client.RTK)
	var inbound Ciphertext
	if err := inbound.UnmarshalBinary(wire); err != nil {
		t.Fatal(err)
	}
	// Compute 2x² − x on the encrypted record.
	result := serverEval.EvalPoly(&inbound, []float64{0, -1, 2})
	outWire, err := result.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	// Client decrypts.
	var outbound Ciphertext
	if err := outbound.UnmarshalBinary(outWire); err != nil {
		t.Fatal(err)
	}
	got := client.DecryptValues(&outbound)
	for i, x := range record {
		want := 2*x*x - x
		if math.Abs(real(got[i])-want) > 1e-4 {
			t.Errorf("slot %d: got %.6f want %.6f", i, real(got[i]), want)
		}
	}
}

// The library's rotation, inner sum and conjugation must compose correctly
// into the rotate-and-sum reduction with complex data.
func TestComposedReduction(t *testing.T) {
	params, err := NewParameters(ParametersLiteral{
		LogN:     10,
		LogQ:     []int{50, 40, 40},
		LogP:     []int{51, 51},
		LogScale: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	kit := NewKit(params, 501)

	n := 8
	vals := make([]complex128, n)
	var wantSum complex128
	for i := range vals {
		vals[i] = complex(float64(i)*0.1, -float64(i)*0.05)
		wantSum += vals[i]
	}
	ct := kit.EncryptValues(vals)
	sum := kit.InnerSum(ct, n)
	got := kit.DecryptValues(sum)[0]
	if cmplx.Abs(got-wantSum) > 1e-5 {
		t.Errorf("InnerSum %v want %v", got, wantSum)
	}

	// Conjugate the sum.
	conj := kit.Eval.Conjugate(sum)
	gotC := kit.DecryptValues(conj)[0]
	if cmplx.Abs(gotC-cmplx.Conj(wantSum)) > 1e-5 {
		t.Errorf("Conjugate %v want %v", gotC, cmplx.Conj(wantSum))
	}
}

// The accelerator model and the four benchmarks must be reachable and
// self-consistent through the public API, including the ablation knobs.
func TestPublicDesignSpace(t *testing.T) {
	em := DefaultEnergy()
	spec := PaperWorkloadSpec()
	tr := BenchmarkPackedBoot(spec)

	base, err := NewModel(U280(), PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	baseTime := Simulate(base, em, tr).TotalTime

	// Fewer lanes → slower.
	cfg := U280()
	cfg.Lanes = 64
	small, err := NewModel(cfg, PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	if Simulate(small, em, tr).TotalTime <= baseTime {
		t.Error("64 lanes should be slower than 512")
	}

	// Naive automorphism → slower.
	cfg = U280()
	cfg.Auto = NaiveAutoCore
	naive, err := NewModel(cfg, PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	if Simulate(naive, em, tr).TotalTime <= baseTime {
		t.Error("naive automorphism should be slower than HFAuto")
	}
}
