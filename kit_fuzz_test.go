package poseidon

import (
	"encoding/binary"
	"errors"
	"math"
	"testing"
)

// Public-API fuzz: no input to the kit's Try entry points may panic the
// process. The fuzzer drives vector length and contents (including NaN/Inf
// payloads), the inner-sum width, and arbitrary mutations of a serialized
// ciphertext fed back through UnmarshalBinary into TryDecryptValues — the
// path an attacker controlling stored ciphertexts would hit.
func FuzzKitTryAPI(f *testing.F) {
	params, err := NewParameters(ParametersLiteral{
		LogN:     8,
		LogQ:     []int{50, 40},
		LogP:     []int{51},
		LogScale: 40,
		Workers:  1,
	})
	if err != nil {
		f.Fatal(err)
	}
	kit := NewKit(params, 321)
	kit.EnableGuards(322)

	valid, err := kit.EncryptValues([]complex128{1, 2i, -3}).MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}

	f.Add(uint16(3), uint64(0x3ff0000000000000), int16(4), []byte{})
	f.Add(uint16(200), uint64(0x7ff0000000000000), int16(3), valid) // +Inf payload, bad width
	f.Add(uint16(0), uint64(0x7ff8000000000001), int16(-1), valid[:40])
	f.Add(uint16(1000), uint64(42), int16(16), valid)

	f.Fuzz(func(t *testing.T, nvals uint16, bits uint64, width int16, ctBytes []byte) {
		vals := make([]complex128, int(nvals)%(2*params.Slots))
		for i := range vals {
			re := math.Float64frombits(bits + uint64(i))
			vals[i] = complex(re, -re)
		}
		ct, err := kit.TryEncryptValues(vals)
		if err != nil {
			if len(vals) <= params.Slots {
				t.Fatalf("TryEncryptValues rejected %d valid slots: %v", len(vals), err)
			}
			if !errors.Is(err, ErrInvalidInput) && !errors.Is(err, ErrInternal) {
				t.Fatalf("TryEncryptValues: untyped error %v", err)
			}
		}
		if ct != nil {
			if _, err := kit.TryInnerSum(ct, int(width)); err != nil &&
				!errors.Is(err, ErrInvalidInput) && !errors.Is(err, ErrKeyMissing) &&
				!errors.Is(err, ErrIntegrity) && !errors.Is(err, ErrInternal) {
				t.Fatalf("TryInnerSum: untyped error %v", err)
			}
			if _, err := kit.TryDecryptValues(ct); err != nil {
				t.Fatalf("TryDecryptValues rejected a fresh ciphertext: %v", err)
			}
		}

		// Adversarial deserialize → decrypt: must reject or decode, never
		// panic. Flipped geometry words are the interesting mutations, so
		// splice the fuzz bytes over a valid frame too.
		var hostile Ciphertext
		if err := hostile.UnmarshalBinary(ctBytes); err == nil {
			if _, err := kit.TryDecryptValues(&hostile); err != nil &&
				!errors.Is(err, ErrInvalidInput) && !errors.Is(err, ErrIntegrity) &&
				!errors.Is(err, ErrInternal) {
				t.Fatalf("TryDecryptValues: untyped error %v", err)
			}
		}
		if len(ctBytes) >= 8 {
			spliced := append([]byte(nil), valid...)
			off := int(binary.LittleEndian.Uint64(ctBytes)%uint64(len(spliced)/8)) * 8
			copy(spliced[off:], ctBytes)
			var mutant Ciphertext
			if err := mutant.UnmarshalBinary(spliced); err == nil {
				if _, err := kit.TryDecryptValues(&mutant); err != nil &&
					!errors.Is(err, ErrInvalidInput) && !errors.Is(err, ErrIntegrity) &&
					!errors.Is(err, ErrInternal) {
					t.Fatalf("TryDecryptValues(mutant): untyped error %v", err)
				}
			}
		}
	})
}

// TestKitTryAPI covers the deterministic contract of the Try layer: valid
// round trips succeed, each misuse maps to its sentinel, and the legacy
// panicking InnerSum now routes through the same validation.
func TestKitTryAPI(t *testing.T) {
	kit := testKit(t)

	in := []complex128{1, 2, 3, 4}
	ct, err := kit.TryEncryptValues(in)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := kit.TryInnerSum(ct, 4)
	if err != nil {
		t.Fatal(err)
	}
	out, err := kit.TryDecryptValues(sum)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := real(out[0]), 10.0; math.Abs(got-want) > 1e-6 {
		t.Errorf("TryInnerSum = %.6f, want %.6f", got, want)
	}

	if _, err := kit.TryInnerSum(ct, 3); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("width 3: got %v, want ErrInvalidInput", err)
	}
	if _, err := kit.TryEncryptValues(make([]complex128, kit.Params.Slots+1)); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("oversize vector: got %v, want ErrInvalidInput", err)
	}
	if _, err := kit.TryDecryptValues(nil); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("nil ciphertext: got %v, want ErrInvalidInput", err)
	}

	// Guarded decrypt flags a corrupted ciphertext instead of decoding it.
	kit.EnableGuards(7)
	defer kit.DisableGuards()
	sealed, err := kit.TryEncryptValues(in)
	if err != nil {
		t.Fatal(err)
	}
	kit.Eval.SealIntegrity(sealed)
	sealed.C0.Coeffs[0][0] ^= 1 << 17
	if _, err := kit.TryDecryptValues(sealed); !errors.Is(err, ErrIntegrity) {
		t.Errorf("corrupted ciphertext: got %v, want ErrIntegrity", err)
	}
}
