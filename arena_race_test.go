package poseidon

import (
	"sync"
	"testing"
)

// Two evaluators derived from one Kit share the Kit's parameters — and
// therefore one polynomial arena. Arena checkout is exclusive (a buffer
// belongs to exactly one caller between Get and Put), so concurrent
// evaluators must never observe each other's scratch. This test runs the
// same op chain on two parallel evaluators simultaneously and bit-compares
// both against a serial reference; under `go test -race` it additionally
// proves the arena's internal synchronization is sound.
func TestKitSharedArenaConcurrentEvaluators(t *testing.T) {
	kit := testKit(t)
	ct1 := kit.EncryptReals([]float64{1.5, -2.25, 3.125, 0.5})
	ct2 := kit.EncryptReals([]float64{-0.75, 4.0, 1.25, -1.5})

	// chain exercises every arena consumer: relinearization keyswitch,
	// rescale scratch, rotation automorphism + keyswitch, and Into reuse.
	chain := func(ev *Evaluator) *Ciphertext {
		x := ev.Rescale(ev.MulRelin(ct1, ct2))
		r := ev.Rotate(x, 1)
		ev.AddInto(x, x, r)
		ev.MulRelinInto(r, x, ev.DropLevel(ct1, x.Level))
		return ev.Rescale(r)
	}

	want := chain(kit.Eval.WithWorkers(1))

	const evaluators = 4
	results := make([]*Ciphertext, evaluators)
	var wg sync.WaitGroup
	for i := 0; i < evaluators; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Mixed worker counts: serial and parallel evaluators race on
			// the same free lists.
			results[i] = chain(kit.Eval.WithWorkers(1 + i%3))
		}(i)
	}
	wg.Wait()

	for i, got := range results {
		if got.Level != want.Level || got.Scale != want.Scale {
			t.Fatalf("evaluator %d: level/scale (%d, %v) != (%d, %v)",
				i, got.Level, got.Scale, want.Level, want.Scale)
		}
		if !got.C0.Equal(want.C0) || !got.C1.Equal(want.C1) {
			t.Fatalf("evaluator %d: coefficients diverged from serial reference — arena scratch was shared", i)
		}
	}
}
