package poseidon

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"poseidon/internal/trace"
)

// TraceRecorder observes an evaluator and accumulates an operation trace:
// run any FHE program functionally once, then price the recorded trace on
// any accelerator design point. Install with Eval.SetObserver(recorder).
//
// The recorder is safe for concurrent use, so it can observe an evaluator
// shared across goroutines — though interleaved recordings lose any
// meaningful op ordering, and phase tags apply to whatever lands after
// SetPhase.
type TraceRecorder struct {
	mu      sync.Mutex
	tr      *Trace
	tag     string
	dropped atomic.Uint64
}

// NewTraceRecorder starts a recorder for a named workload.
func NewTraceRecorder(name string) *TraceRecorder {
	return &TraceRecorder{tr: &Trace{Name: name}}
}

// SetPhase labels subsequent operations with a workload-phase tag
// (surfaced by the simulator's per-phase breakdown).
func (r *TraceRecorder) SetPhase(tag string) {
	r.mu.Lock()
	r.tag = tag
	r.mu.Unlock()
}

// SetWorkers stamps the trace with the limb-parallel worker count of the
// evaluator it observes (typically Eval.Workers()), so reports stay
// attributable to the execution engine that produced them.
func (r *TraceRecorder) SetWorkers(n int) {
	r.mu.Lock()
	r.tr.Workers = n
	r.mu.Unlock()
}

// Observe implements the evaluator observer.
func (r *TraceRecorder) Observe(op string, level int) {
	kind, ok := trace.KindByName(op)
	if !ok {
		// '/'-tagged names are engine sub-phases (e.g. "LinTrans/giant"):
		// informational timing detail nested inside an op the evaluator
		// already reports, so they are silently skipped — counting them as
		// dropped would make every instrumented transform look lossy.
		if strings.ContainsRune(op, '/') {
			return
		}
		// Unknown ops are excluded from the priced trace rather than
		// mis-binned — but counted, so a renamed op can't vanish silently.
		r.dropped.Add(1)
		return
	}
	r.mu.Lock()
	r.tr.AddTagged(kind, level+1, 1, r.tag)
	r.mu.Unlock()
}

// Dropped reports how many observations carried an op name outside the
// trace kind set and were therefore excluded from the recorded trace.
func (r *TraceRecorder) Dropped() uint64 { return r.dropped.Load() }

// CaptureArena snapshots the parameters' polynomial-arena counters into the
// trace's memory profile: total slab footprint and the high-water mark of
// simultaneously checked-out scratch. Call it after the workload has run —
// the peak is cumulative over the arena's lifetime.
func (r *TraceRecorder) CaptureArena(params *Parameters) {
	st := params.ArenaStats()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.tr.Mem == nil {
		r.tr.Mem = &trace.MemStats{}
	}
	r.tr.Mem.ArenaBytes = st.BytesAllocated
	r.tr.Mem.PeakArenaBytes = st.PeakBytes
}

// CaptureGuards snapshots an evaluator's integrity-guard and recovery
// counters into the trace's fault profile: seals computed, boundary
// verifications, spot checks, detected faults, noise-budget refusals, and
// — when a recovery policy is installed — re-execution attempts and their
// outcomes. Call it after the workload has run; a guard-free evaluator
// records all zeros.
func (r *TraceRecorder) CaptureGuards(ev *Evaluator) {
	gs := ev.GuardStats()
	rs := ev.RecoveryStats()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tr.Fault = &trace.FaultStats{
		Seals:           gs.Seals,
		Verifies:        gs.Verifies,
		SpotChecks:      gs.SpotChecks,
		IntegrityFaults: gs.IntegrityFaults,
		NoiseFlags:      gs.NoiseFlags,
		RetryAttempts:   rs.Attempts,
		Recovered:       rs.Recovered,
		Unrecoverable:   rs.Unrecoverable,
	}
}

// SetHeapStats records externally measured Go-heap figures (e.g. from
// testing.AllocsPerRun or a -benchmem run) in the trace's memory profile.
func (r *TraceRecorder) SetHeapStats(allocsPerOp, bytesPerOp float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.tr.Mem == nil {
		r.tr.Mem = &trace.MemStats{}
	}
	r.tr.Mem.AllocsPerOp = allocsPerOp
	r.tr.Mem.BytesPerOp = bytesPerOp
}

// Trace returns the accumulated trace.
func (r *TraceRecorder) Trace() *Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tr
}

// PriceRecorded is a convenience: simulate the recorded trace on a design
// point and return the modeled wall time in seconds.
func PriceRecorded(r *TraceRecorder, cfg Config, params FHEParams) (float64, error) {
	model, err := NewModel(cfg, params)
	if err != nil {
		return 0, fmt.Errorf("poseidon: %w", err)
	}
	rep := Simulate(model, DefaultEnergy(), r.Trace())
	return rep.TotalTime, nil
}
