// Benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation. Run `go test -bench=. -benchmem` to regenerate the
// numbers; `cmd/poseidon` prints the same data as formatted tables.
package poseidon

import (
	"fmt"
	"math/rand"
	"testing"

	"poseidon/internal/arch"
	"poseidon/internal/automorph"
	"poseidon/internal/ntt"
	"poseidon/internal/numeric"
	"poseidon/internal/workloads"
)

// --- Table II / Fig 10: NTT-fusion -----------------------------------------

// BenchmarkTable2NTTFusion measures the software NTT under each fusion
// degree k — the real-execution counterpart of the Table II analytics.
func BenchmarkTable2NTTFusion(b *testing.B) {
	n := 4096
	ps, err := numeric.GenerateNTTPrimes(45, 12, 1)
	if err != nil {
		b.Fatal(err)
	}
	tab, err := ntt.NewTable(n, ps[0])
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	a := make([]uint64, n)
	for i := range a {
		a[i] = rng.Uint64() % ps[0]
	}
	b.Run("radix2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tab.Forward(a)
		}
	})
	for k := 2; k <= 4; k++ {
		plan, err := ntt.NewFusedPlan(tab, k)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("fused_k%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				plan.Forward(a)
			}
		})
	}
}

// BenchmarkFig10ModelSweep evaluates the resource/time model across k.
func BenchmarkFig10ModelSweep(b *testing.B) {
	cr := arch.NewCoreResources(arch.U280(), 16)
	for i := 0; i < b.N; i++ {
		for k := 1; k <= 6; k++ {
			_ = cr.NTTCoresAtK(k)
			_ = cr.NTTTimeAtK(k)
		}
	}
}

// --- Table IV / Fig 7: basic operations ------------------------------------

// BenchmarkTable4BasicOpsSoftware measures the software (CPU-baseline)
// implementations of the basic operations.
func BenchmarkTable4BasicOpsSoftware(b *testing.B) {
	params, err := NewParameters(ParametersLiteral{
		LogN:     12,
		LogQ:     []int{55, 45, 45, 45, 45, 45},
		LogP:     []int{58, 58},
		LogScale: 45,
	})
	if err != nil {
		b.Fatal(err)
	}
	kit := NewKit(params, 3)
	ct1 := kit.EncryptReals([]float64{1, 2, 3})
	ct2 := kit.EncryptReals([]float64{4, 5, 6})
	pt := kit.Enc.EncodeReal([]float64{7, 8, 9}, params.MaxLevel(), params.Scale)

	b.Run("HAdd", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			kit.Eval.Add(ct1, ct2)
		}
	})
	b.Run("PMult", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			kit.Eval.MulPlain(ct1, pt)
		}
	})
	b.Run("CMult", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			kit.Eval.MulRelin(ct1, ct2)
		}
	})
	b.Run("Rescale", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			kit.Eval.Rescale(ct1)
		}
	})
	b.Run("Rotation", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			kit.Eval.Rotate(ct1, 1)
		}
	})
}

// BenchmarkTable4ModelThroughput prices the basic operations on the
// accelerator model (the Poseidon column of Table IV).
func BenchmarkTable4ModelThroughput(b *testing.B) {
	m, err := arch.NewModel(arch.U280(), arch.PaperParams())
	if err != nil {
		b.Fatal(err)
	}
	l := m.Params.Limbs
	for i := 0; i < b.N; i++ {
		_ = m.Latency(m.PMult(l))
		_ = m.Latency(m.CMult(l))
		_ = m.Latency(m.NTTOp(l))
		_ = m.Latency(m.Keyswitch(l))
		_ = m.Latency(m.Rotation(l))
		_ = m.Latency(m.Rescale(l))
	}
}

// --- Tables VI/VII/IX/X, Figs 8/9/11/12: benchmark simulation ---------------

// BenchmarkTable6FullSystem simulates all four paper benchmarks on the
// default design point.
func BenchmarkTable6FullSystem(b *testing.B) {
	m, err := arch.NewModel(arch.U280(), arch.PaperParams())
	if err != nil {
		b.Fatal(err)
	}
	em := arch.DefaultEnergy()
	for _, tr := range workloads.All(workloads.PaperSpec()) {
		b.Run(tr.Name, func(b *testing.B) {
			var rep arch.Report
			for i := 0; i < b.N; i++ {
				rep = arch.Simulate(m, em, tr)
			}
			b.ReportMetric(rep.TotalTime*1e3, "modeled-ms")
			b.ReportMetric(rep.AvgBandwidthUtil*100, "bw-util-%")
			b.ReportMetric(rep.EDP, "EDP-Js")
		})
	}
}

// BenchmarkTable9AutoAblation compares HFAuto against the naive
// automorphism core across the benchmarks.
func BenchmarkTable9AutoAblation(b *testing.B) {
	em := arch.DefaultEnergy()
	for _, kind := range []arch.AutoKind{arch.HFAutoCore, arch.NaiveAutoCore} {
		cfg := arch.U280()
		cfg.Auto = kind
		m, err := arch.NewModel(cfg, arch.PaperParams())
		if err != nil {
			b.Fatal(err)
		}
		tr := workloads.ResNet20(workloads.PaperSpec())
		b.Run(kind.String(), func(b *testing.B) {
			var rep arch.Report
			for i := 0; i < b.N; i++ {
				rep = arch.Simulate(m, em, tr)
			}
			b.ReportMetric(rep.TotalTime*1e3, "modeled-ms")
		})
	}
}

// BenchmarkFig11LaneSweep runs the lane-sensitivity study.
func BenchmarkFig11LaneSweep(b *testing.B) {
	em := arch.DefaultEnergy()
	tr := workloads.ResNet20(workloads.PaperSpec())
	for _, lanes := range []int{64, 128, 256, 512} {
		cfg := arch.U280()
		cfg.Lanes = lanes
		m, err := arch.NewModel(cfg, arch.PaperParams())
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("lanes%d", lanes), func(b *testing.B) {
			var rep arch.Report
			for i := 0; i < b.N; i++ {
				rep = arch.Simulate(m, em, tr)
			}
			b.ReportMetric(rep.TotalTime*1e3, "modeled-ms")
			b.ReportMetric(rep.EDP, "EDP-Js")
		})
	}
}

// --- Table VIII: automorphism cores (software execution) -------------------

// BenchmarkTable8Automorphism compares the naive and HFAuto software
// implementations on a full-size vector.
func BenchmarkTable8Automorphism(b *testing.B) {
	n := 65536
	mod := numeric.NewModulus(1152921504606584833)
	rng := rand.New(rand.NewSource(2))
	src := make([]uint64, n)
	for i := range src {
		src[i] = rng.Uint64() % mod.Q
	}
	dst := make([]uint64, n)

	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			automorph.Naive(dst, src, 5, mod)
		}
	})
	h, err := automorph.NewHFAuto(n, 512)
	if err != nil {
		b.Fatal(err)
	}
	m := h.Precompute(5)
	b.Run("hfauto", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.Apply(dst, src, mod)
		}
	})
}

// --- Fig 12 / Table X: energy ------------------------------------------------

// BenchmarkFig12Energy computes the per-benchmark energy breakdowns.
func BenchmarkFig12Energy(b *testing.B) {
	m, err := arch.NewModel(arch.U280(), arch.PaperParams())
	if err != nil {
		b.Fatal(err)
	}
	em := arch.DefaultEnergy()
	benches := workloads.All(workloads.PaperSpec())
	for i := 0; i < b.N; i++ {
		for _, tr := range benches {
			_ = arch.SimulateEnergyBreakdown(m, em, tr)
		}
	}
}

// --- Scheme-level microbenches ----------------------------------------------

// BenchmarkKeyswitch isolates the hybrid keyswitch (the paper's dominant
// operation) in software.
func BenchmarkKeyswitch(b *testing.B) {
	params, err := NewParameters(ParametersLiteral{
		LogN:     12,
		LogQ:     []int{55, 45, 45, 45, 45, 45},
		LogP:     []int{58, 58},
		LogScale: 45,
	})
	if err != nil {
		b.Fatal(err)
	}
	kit := NewKit(params, 4)
	ct := kit.EncryptReals([]float64{1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kit.Eval.Rotate(ct, 1)
	}
}

// BenchmarkEncodeDecode measures the canonical-embedding transforms.
func BenchmarkEncodeDecode(b *testing.B) {
	params, err := NewParameters(ParametersLiteral{
		LogN:     13,
		LogQ:     []int{55, 45},
		LogP:     []int{58},
		LogScale: 45,
	})
	if err != nil {
		b.Fatal(err)
	}
	enc := NewEncoder(params)
	vals := make([]complex128, params.Slots)
	for i := range vals {
		vals[i] = complex(float64(i%17)/17, float64(i%11)/11)
	}
	b.Run("encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			enc.Encode(vals, params.MaxLevel(), params.Scale)
		}
	})
	pt := enc.Encode(vals, params.MaxLevel(), params.Scale)
	b.Run("decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			enc.Decode(pt)
		}
	})
}
